/**
 * @file
 * In-SSD vertex/feature cache tier tests (DESIGN.md §14): eviction
 * policy semantics (LRU recency, multi-section promotion/demotion,
 * FIFO insertion order), capacity-bound eviction, deterministic
 * stats, the 0/0 hit-rate guard, Zipf target-stream determinism and
 * skew, capacityMB = 0 byte-identity with the cache-less simulator,
 * end-to-end hit accounting on both engine paths, and byte-identical
 * cache-enabled array runs across worker counts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cache/vertex_cache.h"
#include "platforms/array.h"
#include "platforms/report.h"
#include "serve/arrival.h"
#include "sim/executor.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/zipf.h"

namespace {

using namespace beacongnn;
using cache::CacheConfig;
using cache::CachePolicy;
using cache::CacheStats;
using cache::VertexCache;

/** Config with an exact line count: one line = 1 MiB. */
CacheConfig
linesConfig(std::uint64_t lines, CachePolicy policy)
{
    CacheConfig cfg;
    cfg.capacityMB = static_cast<double>(lines);
    cfg.lineBytes = 1u << 20;
    cfg.policy = policy;
    return cfg;
}

// ==================================================================
// Policy names and config plumbing.
// ==================================================================

TEST(CacheConfig, NamesRoundTripAndListIsStable)
{
    EXPECT_STREQ(cache::cachePolicyName(CachePolicy::Lru), "lru");
    EXPECT_STREQ(cache::cachePolicyName(CachePolicy::MsLru), "mslru");
    EXPECT_STREQ(cache::cachePolicyName(CachePolicy::Fifo), "fifo");
    EXPECT_EQ(cache::findCachePolicy("LRU"), CachePolicy::Lru);
    EXPECT_EQ(cache::findCachePolicy("MsLru"), CachePolicy::MsLru);
    EXPECT_EQ(cache::findCachePolicy("fifo"), CachePolicy::Fifo);
    EXPECT_FALSE(cache::findCachePolicy("nope").has_value());
    EXPECT_EQ(cache::cachePolicyList(), "lru, mslru, fifo");
}

TEST(CacheConfig, LineCountFromCapacity)
{
    CacheConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    cfg.capacityMB = 1.0; // 1 MiB of 4 KiB lines.
    EXPECT_TRUE(cfg.enabled());
    EXPECT_EQ(cfg.lines(), 256u);
    cfg.capacityMB = 0.001; // Rounds down to zero lines -> floor 1.
    EXPECT_EQ(cfg.lines(), 1u);
}

// ==================================================================
// Eviction policies.
// ==================================================================

TEST(CachePolicyTest, LruEvictsLeastRecentlyUsed)
{
    VertexCache c(linesConfig(3, CachePolicy::Lru));
    EXPECT_EQ(c.capacityLines(), 3u);
    c.fill(1, 10);
    c.fill(2, 20);
    c.fill(3, 30);
    EXPECT_EQ(c.lookup(1), std::optional<sim::Tick>(10)); // 1 is MRU.
    c.fill(4, 40); // Victim is 2, the least recently used.
    EXPECT_FALSE(c.lookup(2).has_value());
    EXPECT_TRUE(c.lookup(1).has_value());
    EXPECT_TRUE(c.lookup(3).has_value());
    EXPECT_TRUE(c.lookup(4).has_value());
    EXPECT_EQ(c.stats().evictions, 1u);
    EXPECT_EQ(c.size(), 3u);
}

TEST(CachePolicyTest, FifoIgnoresHitsAndEvictsOldestFill)
{
    VertexCache c(linesConfig(3, CachePolicy::Fifo));
    c.fill(1, 10);
    c.fill(2, 20);
    c.fill(3, 30);
    EXPECT_TRUE(c.lookup(1).has_value()); // Hit does not touch.
    c.fill(4, 40); // Victim is 1, the oldest fill.
    EXPECT_FALSE(c.lookup(1).has_value());
    EXPECT_TRUE(c.lookup(2).has_value());
    EXPECT_TRUE(c.lookup(3).has_value());
    EXPECT_TRUE(c.lookup(4).has_value());
}

TEST(CachePolicyTest, MsLruPromotionProtectsReHitLines)
{
    // Capacity 4 -> protected section holds 2 lines.
    VertexCache c(linesConfig(4, CachePolicy::MsLru));
    c.fill(1, 10);
    c.fill(2, 20);
    c.fill(3, 30);
    c.fill(4, 40);
    // Re-hits promote 2 then 1 into the protected section.
    EXPECT_TRUE(c.lookup(2).has_value());
    EXPECT_TRUE(c.lookup(1).has_value());
    // Probation now holds {4, 3} (MRU first); a new fill evicts the
    // probation LRU — 3 — while the protected lines survive.
    c.fill(5, 50);
    EXPECT_FALSE(c.lookup(3).has_value());
    EXPECT_TRUE(c.lookup(1).has_value());
    EXPECT_TRUE(c.lookup(2).has_value());
    EXPECT_TRUE(c.lookup(4).has_value()); // Promotes 4...
    // ...which overflows the protected section and demotes its LRU
    // (2) back to probation; the next fill then evicts probation's
    // LRU, which is 5 (2 re-entered probation at the MRU end).
    c.fill(6, 60);
    EXPECT_FALSE(c.lookup(5).has_value());
    EXPECT_TRUE(c.lookup(2).has_value());
}

TEST(CachePolicyTest, OneShotScanCannotFlushProtectedSet)
{
    // The segmented-LRU motivation: a long one-shot scan only churns
    // probation; promoted lines stay resident.
    VertexCache c(linesConfig(8, CachePolicy::MsLru));
    c.fill(100, 1);
    c.fill(101, 2);
    EXPECT_TRUE(c.lookup(100).has_value()); // Promote both.
    EXPECT_TRUE(c.lookup(101).has_value());
    for (std::uint64_t k = 0; k < 64; ++k)
        c.fill(1000 + k, 10 + static_cast<sim::Tick>(k));
    EXPECT_TRUE(c.lookup(100).has_value());
    EXPECT_TRUE(c.lookup(101).has_value());

    // Plain LRU flushes the pair under the same scan.
    VertexCache lru(linesConfig(8, CachePolicy::Lru));
    lru.fill(100, 1);
    lru.fill(101, 2);
    EXPECT_TRUE(lru.lookup(100).has_value());
    EXPECT_TRUE(lru.lookup(101).has_value());
    for (std::uint64_t k = 0; k < 64; ++k)
        lru.fill(1000 + k, 10 + static_cast<sim::Tick>(k));
    EXPECT_FALSE(lru.lookup(100).has_value());
    EXPECT_FALSE(lru.lookup(101).has_value());
}

TEST(CachePolicyTest, CapacityBoundAndByteAccounting)
{
    const std::uint64_t kLines = 16;
    for (CachePolicy p :
         {CachePolicy::Lru, CachePolicy::MsLru, CachePolicy::Fifo}) {
        VertexCache c(linesConfig(kLines, p));
        sim::Pcg32 rng(7, 11);
        for (int i = 0; i < 500; ++i) {
            std::uint64_t key = rng.below(64);
            if (!c.lookup(key))
                c.fill(key, static_cast<sim::Tick>(i));
            EXPECT_LE(c.size(), kLines);
            EXPECT_EQ(c.stats().bytes, c.size() * (1u << 20));
        }
        EXPECT_EQ(c.size(), kLines);
        EXPECT_EQ(c.stats().evictions, c.stats().fills - kLines);
    }
}

TEST(CachePolicyTest, RepeatedSequenceIsDeterministic)
{
    auto run = [] {
        VertexCache c(linesConfig(8, CachePolicy::MsLru));
        sim::Pcg32 rng(0xBEEF, 3);
        for (int i = 0; i < 2000; ++i) {
            std::uint64_t key = rng.below(40);
            if (!c.lookup(key))
                c.fill(key, static_cast<sim::Tick>(i));
        }
        return c.stats();
    };
    CacheStats a = run();
    CacheStats b = run();
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.fills, b.fills);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_GT(a.hits, 0u);
    EXPECT_GT(a.evictions, 0u);
}

// ==================================================================
// Hit-rate 0/0 guard (the PR 5 crossFraction discipline).
// ==================================================================

TEST(CacheStatsTest, HitRateGuardsZeroOverZero)
{
    CacheStats s;
    EXPECT_EQ(s.hitRate(), 0.0); // Not NaN.
    s.hits = 3;
    s.misses = 1;
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.75);
    CacheStats merged;
    merged.merge(s);
    merged.merge(CacheStats{});
    EXPECT_DOUBLE_EQ(merged.hitRate(), 0.75);
}

// ==================================================================
// Zipf target distribution.
// ==================================================================

TEST(ZipfTest, DeterministicAndSkewed)
{
    sim::ZipfSampler z(1.0, 100);
    EXPECT_EQ(z.ranks(), 100u);
    sim::Pcg32 rng(42, 1);
    std::vector<std::uint64_t> counts(100, 0);
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t r = z.draw(rng);
        ASSERT_LT(r, 100u);
        ++counts[r];
    }
    // Zipf(1) over 100 ranks: rank 0 carries ~19% of the mass, far
    // above the 1% a uniform draw would give, and the tail decays.
    EXPECT_GT(counts[0], counts[50] * 5);
    EXPECT_GT(counts[0], 2000u);

    sim::Pcg32 rng2(42, 1);
    for (int i = 0; i < 100; ++i) {
        sim::Pcg32 probe = rng2; // Same state -> same draw.
        std::uint64_t a = z.draw(probe);
        std::uint64_t b = z.draw(rng2);
        EXPECT_EQ(a, b);
    }
}

TEST(ZipfTest, ArrivalStreamsAreDeterministicAndSkewAware)
{
    serve::ArrivalConfig cfg;
    cfg.requests = 4000;
    cfg.zipfTheta = 0.99;
    auto a = serve::generateArrivals(cfg, 10000);
    auto b = serve::generateArrivals(cfg, 10000);
    ASSERT_EQ(a.size(), b.size());
    std::uint64_t hot = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].target, b[i].target);
        EXPECT_EQ(a[i].tenant, b[i].tenant);
        if (a[i].target < 100)
            ++hot;
    }
    // The hottest 1% of nodes draw far more than 1% of the traffic.
    EXPECT_GT(hot, a.size() / 5);

    // theta = 0 keeps the historical uniform stream: same seed, no
    // comparable concentration on the low ids.
    serve::ArrivalConfig uniform = cfg;
    uniform.zipfTheta = 0.0;
    auto u = serve::generateArrivals(uniform, 10000);
    std::uint64_t uniform_hot = 0;
    for (const auto &r : u)
        if (r.target < 100)
            ++uniform_hot;
    EXPECT_LT(uniform_hot, hot / 4);
}

// ==================================================================
// End-to-end: engine integration, metrics, determinism.
// ==================================================================

struct CacheRig
{
    std::unique_ptr<platforms::WorkloadBundle> bundle;
    platforms::RunConfig rc;

    CacheRig()
    {
        gnn::ModelConfig model;
        ssd::SystemConfig sys;
        auto spec = graph::workload("amazon");
        spec.simNodes = 4000;
        bundle = platforms::makeBundle(spec, sys.flash, model);
        rc.batchSize = 32;
        rc.batches = 2;
    }

    ~CacheRig() { sim::SimExecutor::setDefaultJobs(0); }

    /** Metrics JSON + result CSV of one run. */
    std::pair<std::string, std::string>
    fingerprint(platforms::PlatformKind kind,
                const platforms::RunConfig &cfg)
    {
        sim::MetricRegistry reg;
        platforms::RunResult r =
            platforms::runPlatform(platforms::makePlatform(kind), cfg,
                                   *bundle, &reg);
        std::ostringstream json, csv;
        reg.writeJson(json);
        platforms::writeCsvRow(csv, r);
        return {json.str(), csv.str()};
    }
};

TEST(CacheEndToEnd, DisabledCacheIsByteIdenticalToDefaultRun)
{
    // capacityMB = 0 must not even construct the tier: the metrics
    // JSON and result row match a default-config run byte for byte.
    CacheRig rig;
    platforms::RunConfig zeroed = rig.rc;
    zeroed.cache.capacityMB = 0.0;
    zeroed.cache.policy = CachePolicy::MsLru; // Irrelevant when off.
    auto base = rig.fingerprint(platforms::PlatformKind::BG2, rig.rc);
    auto off = rig.fingerprint(platforms::PlatformKind::BG2, zeroed);
    EXPECT_EQ(base.first, off.first);
    EXPECT_EQ(base.second, off.second);
    EXPECT_EQ(base.first.find("engine.cache"), std::string::npos);
}

TEST(CacheEndToEnd, StreamingHitsSaveFlashReads)
{
    CacheRig rig;
    rig.rc.zipfTheta = 0.99; // Skewed targets revisit hot vertices.
    platforms::RunConfig cached = rig.rc;
    cached.cache.capacityMB = 16.0;

    sim::MetricRegistry reg_off, reg_on;
    platforms::RunResult off = platforms::runPlatform(
        platforms::makePlatform(platforms::PlatformKind::BG2), rig.rc,
        *rig.bundle, &reg_off);
    platforms::RunResult on = platforms::runPlatform(
        platforms::makePlatform(platforms::PlatformKind::BG2), cached,
        *rig.bundle, &reg_on);
    ASSERT_TRUE(off.ok);
    ASSERT_TRUE(on.ok);
    EXPECT_GT(reg_on.counter("engine.cache.hits").value(), 0u);
    EXPECT_GT(reg_on.gauge("engine.cache.hit_rate").value(), 0.0);
    EXPECT_LT(on.tally.flashReads, off.tally.flashReads);
    // Every probe is accounted: hits + misses covers all fills.
    EXPECT_GE(reg_on.counter("engine.cache.misses").value(),
              reg_on.counter("engine.cache.fills").value());
    // The functional result is unchanged — caching is a timing tier
    // and sampling is keyed, not timing-dependent.
    EXPECT_EQ(on.lastSubgraph.size(), off.lastSubgraph.size());
}

TEST(CacheEndToEnd, BarrierPathHitsOnConventionalPlatform)
{
    // CC reads the feature table per visit; with a skewed target
    // stream the hot pages re-hit across batches.
    CacheRig rig;
    rig.rc.zipfTheta = 0.99;
    rig.rc.batches = 4;
    platforms::RunConfig cached = rig.rc;
    cached.cache.capacityMB = 64.0;

    sim::MetricRegistry reg_off, reg_on;
    platforms::RunResult off = platforms::runPlatform(
        platforms::makePlatform(platforms::PlatformKind::CC), rig.rc,
        *rig.bundle, &reg_off);
    platforms::RunResult on = platforms::runPlatform(
        platforms::makePlatform(platforms::PlatformKind::CC), cached,
        *rig.bundle, &reg_on);
    ASSERT_TRUE(off.ok);
    ASSERT_TRUE(on.ok);
    EXPECT_GT(reg_on.counter("engine.cache.hits").value(), 0u);
    EXPECT_LT(on.tally.flashReads, off.tally.flashReads);
    // Barrier hits stay host-visible commands.
    EXPECT_EQ(on.commands, off.commands);
}

TEST(CacheEndToEnd, CacheEnabledArrayByteIdenticalAcrossJobCounts)
{
    CacheRig rig;
    rig.rc.cache.capacityMB = 8.0;
    rig.rc.cache.policy = CachePolicy::MsLru;
    rig.rc.zipfTheta = 0.9;
    rig.rc.topology.devices = 8;

    auto run = [&](unsigned jobs) {
        sim::SimExecutor::setDefaultJobs(jobs);
        return rig.fingerprint(platforms::PlatformKind::BG2, rig.rc);
    };
    auto j1 = run(1);
    auto j2 = run(2);
    auto j8 = run(8);
    EXPECT_FALSE(j1.first.empty());
    EXPECT_NE(j1.first.find("engine.cache.hits"), std::string::npos);
    EXPECT_NE(j1.first.find("array.dev0.cache.hits"),
              std::string::npos);
    EXPECT_NE(j1.first.find("array.dev7.cache.hit_rate"),
              std::string::npos);
    EXPECT_EQ(j1.first, j2.first);
    EXPECT_EQ(j1.first, j8.first);
    EXPECT_EQ(j1.second, j2.second);
    EXPECT_EQ(j1.second, j8.second);
}

} // namespace
