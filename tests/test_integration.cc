/**
 * @file
 * Cross-cutting integration tests: regular I/O coexisting with GNN
 * acceleration on one device (§VI-G), coalescing-ablation functional
 * equivalence, output-stationary dataflow properties, multi-seed
 * cross-platform equivalence sweeps, and full-workload determinism.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/beacongnn.h"
#include "graph/generator.h"
#include "platforms/runner.h"

namespace {

using namespace beacongnn;

TEST(Integration, RegularIoCoexistsWithAcceleration)
{
    SystemOptions opts;
    opts.system.flash.channels = 4;
    opts.system.flash.diesPerChannel = 2;
    opts.system.flash.blocksPerPlane = 128;
    opts.system.flash.pagesPerBlock = 16;
    opts.model.hops = 2;
    graph::Graph g = graph::generateRing(1000, 16);
    BeaconGnnSystem sys(g, graph::FeatureTable(16, 1), opts);

    // Regular data written before the GNN batch.
    std::vector<std::uint8_t> data(opts.system.flash.pageSize, 0x42);
    auto w = sys.io().hostWrite(0, 77, data);
    ASSERT_TRUE(w.ok);
    EXPECT_EQ(w.deferredBy, 0u);

    // Run a mini-batch; requests "during" it get deferred.
    std::vector<graph::NodeId> targets = {1, 2, 3, 4};
    auto r = sys.runMiniBatch(targets);
    ASSERT_TRUE(r.prep.ok);
    auto mid = sys.io().hostRead(
        r.prep.start + (r.prep.finish - r.prep.start) / 2, 77,
        data);
    ASSERT_TRUE(mid.ok);
    EXPECT_GT(mid.deferredBy, 0u);
    EXPECT_EQ(sys.io().deferredCount(), 1u);
    EXPECT_EQ(data[0], 0x42);

    // After the batch: immediate service, content intact.
    auto after =
        sys.io().hostRead(r.prep.finish + 1000, 77, data);
    ASSERT_TRUE(after.ok);
    EXPECT_EQ(after.deferredBy, 0u);

    // Regular writes never touched the DirectGraph blocks.
    auto ppa = sys.firmware().ftl().translate(77, false);
    ASSERT_TRUE(ppa.has_value());
    EXPECT_FALSE(sys.firmware().ftl().ppaReserved(*ppa));
}

TEST(Integration, CoalescingAblationSamplesIdentically)
{
    // Hub graph with spills; wide fanout so secondaries get multiple
    // hits. Coalescing on/off must not change the subgraph.
    gnn::ModelConfig model;
    model.hops = 2;
    model.fanout = 12;
    ssd::SystemConfig sys;
    auto spec = graph::workload("amazon");
    spec.simNodes = 2000;
    spec.avgDegree = 1600; // Force secondary sections.
    auto bundle = platforms::makeBundle(spec, sys.flash, model);
    platforms::RunConfig rc;
    rc.batchSize = 16;
    rc.batches = 1;

    auto agg = [](const gnn::Subgraph &sg) {
        std::map<std::pair<graph::NodeId, int>,
                 std::multiset<graph::NodeId>> m;
        for (gnn::Slot s = 0; s < sg.size(); ++s) {
            const auto &e = sg[s];
            if (e.parent == gnn::kNoParent)
                continue;
            m[{sg[e.parent].node, sg[e.parent].hop}].insert(e.node);
        }
        return m;
    };

    auto on = platforms::makePlatform(platforms::PlatformKind::BG2);
    auto off = on;
    off.flags.coalesceSecondary = false;
    auto a = platforms::runPlatform(on, rc, *bundle);
    auto b = platforms::runPlatform(off, rc, *bundle);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.lastSubgraph.size(), b.lastSubgraph.size());
    EXPECT_EQ(agg(a.lastSubgraph), agg(b.lastSubgraph));
    // Without coalescing the device issues strictly more reads.
    EXPECT_GT(b.tally.flashReads, a.tally.flashReads);
}

TEST(Integration, OutputStationaryDataflowProperties)
{
    accel::SystolicConfig ws;
    accel::SystolicConfig os = ws;
    os.dataflow = accel::Dataflow::OutputStationary;
    // Same MAC count either way; OS writes each output exactly once.
    gnn::GemmShape g{1000, 128, 256};
    auto ews = accel::estimateGemm(ws, g);
    auto eos = accel::estimateGemm(os, g);
    EXPECT_EQ(ews.macs, eos.macs);
    EXPECT_EQ(eos.sramWriteBytes, g.m * g.n * 2);
    EXPECT_GT(ews.sramWriteBytes, eos.sramWriteBytes);
    // Both stay within the MAC-grid utilization bound.
    EXPECT_LE(eos.utilization(os), 1.0);
    EXPECT_GT(eos.utilization(os), 0.0);
    // K-dominated shapes favour OS: partial sums stay in the PEs
    // instead of being re-accumulated per K tile.
    gnn::GemmShape deep{32, 32, 100000};
    EXPECT_LT(accel::estimateGemm(os, deep).cycles,
              accel::estimateGemm(ws, deep).cycles / 2);
    // M-dominated shapes favour WS: weights load once, rows stream.
    gnn::GemmShape tall{100000, 32, 32};
    EXPECT_LT(accel::estimateGemm(ws, tall).cycles,
              accel::estimateGemm(os, tall).cycles);
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, PlatformsSampleIdenticallyAcrossSeeds)
{
    // For any model seed, all DirectGraph platforms and the golden
    // sampler agree on the sampled multiset.
    gnn::ModelConfig model;
    model.hops = 2;
    model.fanout = 3;
    model.seed = GetParam();
    ssd::SystemConfig sys;
    sys.flash.channels = 4;
    sys.flash.diesPerChannel = 2;
    auto spec = graph::workload("OGBN");
    spec.simNodes = 3000;
    auto bundle = platforms::makeBundle(spec, sys.flash, model);
    platforms::RunConfig rc;
    rc.system = sys;
    rc.batchSize = 16;
    rc.batches = 1;
    rc.targetSeed = GetParam() * 7 + 1;

    auto dgsp = platforms::runPlatform(
        platforms::makePlatform(platforms::PlatformKind::BG_DGSP), rc,
        *bundle);
    auto bg2 = platforms::runPlatform(
        platforms::makePlatform(platforms::PlatformKind::BG2), rc,
        *bundle);
    ASSERT_TRUE(dgsp.ok && bg2.ok);
    ASSERT_EQ(dgsp.lastSubgraph.size(), bg2.lastSubgraph.size());
    std::multiset<graph::NodeId> a, b;
    for (gnn::Slot s = 0; s < dgsp.lastSubgraph.size(); ++s) {
        a.insert(dgsp.lastSubgraph[s].node);
        b.insert(bg2.lastSubgraph[s].node);
    }
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 17u, 333u, 54321u));

TEST(Integration, FullWorkloadRunIsDeterministic)
{
    ssd::SystemConfig sys;
    auto spec = graph::workload("movielens");
    spec.simNodes = 5000;
    auto bundle =
        platforms::makeBundle(spec, sys.flash, gnn::ModelConfig{});
    platforms::RunConfig rc;
    rc.batchSize = 64;
    rc.batches = 3;
    for (auto kind :
         {platforms::PlatformKind::CC, platforms::PlatformKind::BG_SP,
          platforms::PlatformKind::BG2}) {
        auto p = platforms::makePlatform(kind);
        auto a = platforms::runPlatform(p, rc, *bundle);
        auto b = platforms::runPlatform(p, rc, *bundle);
        EXPECT_EQ(a.totalTime, b.totalTime) << p.name;
        EXPECT_EQ(a.tally.channelBytes, b.tally.channelBytes) << p.name;
        EXPECT_EQ(a.energy.total(), b.energy.total()) << p.name;
    }
}

TEST(Integration, ScrubThenReclaimThenServe)
{
    // The full §VI-F lifecycle on one device, ending with a healthy
    // mini-batch.
    SystemOptions opts;
    opts.system.flash.channels = 4;
    opts.system.flash.diesPerChannel = 2;
    opts.system.flash.blocksPerPlane = 256;
    opts.system.flash.pagesPerBlock = 16;
    opts.model.hops = 2;
    graph::GeneratorParams gp;
    gp.nodes = 600;
    gp.avgDegree = 24;
    BeaconGnnSystem sys(graph::generatePowerLaw(gp),
                        graph::FeatureTable(16, 2), opts);

    // Corrupt, scrub, verify.
    flash::Ppa victim = sys.layout().nodes[3].primary.page();
    sys.corruptBit(victim, 20, 1);
    EXPECT_GE(sys.scrub().errorsFound, 1u);

    // Wear, reclaim, verify.
    std::vector<std::uint8_t> data(
        sys.pageStore().pageBytes(), 1);
    std::set<flash::BlockId> worn;
    for (ssd::Lpa l = 0; l < 64; ++l) {
        auto w = sys.io().hostWrite(0, l, data);
        ASSERT_TRUE(w.ok);
        auto p = sys.firmware().ftl().translate(l, false);
        worn.insert(sys.pageStore().addressCodec().blockOf(*p));
    }
    for (auto b : worn)
        for (int i = 0; i < 100; ++i)
            sys.pageStore().eraseBlock(b);
    EXPECT_TRUE(sys.reclaimIfNeeded(10.0));

    std::vector<graph::NodeId> targets = {3, 9, 27};
    auto r = sys.runMiniBatch(targets);
    EXPECT_TRUE(r.prep.ok);
    EXPECT_EQ(r.embeddings.size(), 3u);
}

} // namespace
