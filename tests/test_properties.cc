/**
 * @file
 * System-level property tests: monotonicity invariants of the timing
 * model across configurations, conservation laws of the tallies and
 * energy accounting, and the node-deduplication extension's
 * functional-equivalence guarantee. Each property is swept over
 * several configurations with TEST_P.
 */

#include <gtest/gtest.h>

#include "platforms/runner.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::platforms;

std::unique_ptr<WorkloadBundle> &
sharedBundle()
{
    static std::unique_ptr<WorkloadBundle> b = [] {
        ssd::SystemConfig sys;
        auto spec = graph::workload("amazon");
        spec.simNodes = 5000;
        return makeBundle(spec, sys.flash, gnn::ModelConfig{});
    }();
    return b;
}

RunConfig
baseRun()
{
    RunConfig rc;
    rc.batchSize = 48;
    rc.batches = 2;
    return rc;
}

class AllPlatforms : public ::testing::TestWithParam<PlatformKind>
{
};

TEST_P(AllPlatforms, TraditionalFlashNeverFasterThanUll)
{
    auto p = makePlatform(GetParam());
    RunConfig ull = baseRun();
    RunConfig trad = baseRun();
    trad.system.flash = trad.system.flash.asTraditional();
    auto a = runPlatform(p, ull, *sharedBundle());
    auto b = runPlatform(p, trad, *sharedBundle());
    EXPECT_LE(a.totalTime, b.totalTime) << p.name;
}

TEST_P(AllPlatforms, HigherChannelBandwidthNeverHurts)
{
    auto p = makePlatform(GetParam());
    RunConfig slow = baseRun();
    slow.system.flash.channelMBps = 333;
    RunConfig fast = baseRun();
    fast.system.flash.channelMBps = 2400;
    auto a = runPlatform(p, slow, *sharedBundle());
    auto b = runPlatform(p, fast, *sharedBundle());
    EXPECT_GE(b.throughput, a.throughput * 0.999) << p.name;
}

TEST_P(AllPlatforms, EnergyComponentsSumToTotal)
{
    auto p = makePlatform(GetParam());
    auto r = runPlatform(p, baseRun(), *sharedBundle());
    const auto &e = r.energy;
    double sum = e.flash + e.channel + e.dram + e.pcie + e.cores +
                 e.hostCpu + e.accel + e.engines + e.background;
    EXPECT_NEAR(e.total(), sum, 1e-12) << p.name;
    EXPECT_GT(e.total(), 0.0);
    EXPECT_GE(e.offStorageShare(), 0.0);
    EXPECT_LE(e.offStorageShare(), 1.0);
}

TEST_P(AllPlatforms, ThroughputConsistentWithTotalTime)
{
    auto p = makePlatform(GetParam());
    auto r = runPlatform(p, baseRun(), *sharedBundle());
    double expect = static_cast<double>(r.targets) /
                    sim::toSeconds(r.totalTime);
    EXPECT_NEAR(r.throughput, expect, expect * 1e-9) << p.name;
}

TEST_P(AllPlatforms, ChannelBytesNeverExceedPageEquivalent)
{
    auto p = makePlatform(GetParam());
    auto r = runPlatform(p, baseRun(), *sharedBundle());
    // Each flash read moves at most one page over the channel.
    EXPECT_LE(r.tally.channelBytes,
              r.tally.flashReads *
                  std::uint64_t{baseRun().system.flash.pageSize})
        << p.name;
    EXPECT_GT(r.tally.flashReads, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllPlatforms,
    ::testing::Values(PlatformKind::CC, PlatformKind::GLIST,
                      PlatformKind::SmartSage, PlatformKind::BG1,
                      PlatformKind::BG_DG, PlatformKind::BG_SP,
                      PlatformKind::BG_DGSP, PlatformKind::BG2),
    [](const ::testing::TestParamInfo<PlatformKind> &pinfo) {
        std::string n = platformName(pinfo.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(Properties, MoreBackendNeverSlowerForBg2)
{
    // Doubling channels or dies must not slow BG-2 down.
    auto p = makePlatform(PlatformKind::BG2);
    gnn::ModelConfig model;
    auto spec = graph::workload("amazon");
    spec.simNodes = 5000;

    RunConfig small = baseRun();
    small.system.flash.channels = 8;
    auto b_small = makeBundle(spec, small.system.flash, model);
    auto r_small = runPlatform(p, small, *b_small);

    RunConfig big = baseRun();
    big.system.flash.channels = 32;
    auto b_big = makeBundle(spec, big.system.flash, model);
    auto r_big = runPlatform(p, big, *b_big);

    EXPECT_LE(r_big.prepTime, r_small.prepTime);
}

TEST(Properties, DedupeReducesReadsKeepsSubgraph)
{
    // A tiny graph guarantees node repetition inside one batch.
    gnn::ModelConfig model;
    model.hops = 3;
    model.fanout = 3;
    ssd::SystemConfig sys;
    auto spec = graph::workload("OGBN");
    spec.simNodes = 200; // Heavy collision rate.
    auto bundle = makeBundle(spec, sys.flash, model);
    RunConfig rc;
    rc.batchSize = 32;
    rc.batches = 1;

    auto plain = makePlatform(PlatformKind::BG2);
    auto dedup = plain;
    dedup.flags.dedupeNodes = true;
    auto a = runPlatform(plain, rc, *bundle);
    auto b = runPlatform(dedup, rc, *bundle);
    ASSERT_TRUE(a.ok && b.ok);
    // Same sampled subgraph (instances preserved)...
    EXPECT_EQ(a.lastSubgraph.size(), b.lastSubgraph.size());
    std::multiset<graph::NodeId> na, nb;
    for (gnn::Slot s = 0; s < a.lastSubgraph.size(); ++s) {
        na.insert(a.lastSubgraph[s].node);
        nb.insert(b.lastSubgraph[s].node);
    }
    EXPECT_EQ(na, nb);
    // ...with strictly fewer flash reads and no worse time.
    EXPECT_LT(b.tally.flashReads, a.tally.flashReads);
    EXPECT_LE(b.prepTime, a.prepTime);
}

TEST(Properties, BatchSizeThroughputMonotoneOnBg2)
{
    auto p = makePlatform(PlatformKind::BG2);
    double prev = 0;
    for (std::uint32_t bs : {16u, 64u, 256u}) {
        RunConfig rc = baseRun();
        rc.batchSize = bs;
        auto r = runPlatform(p, rc, *sharedBundle());
        EXPECT_GE(r.throughput, prev * 0.98) << bs;
        prev = r.throughput;
    }
}

TEST(Properties, CommandStatsCoverEveryRead)
{
    for (auto kind : {PlatformKind::CC, PlatformKind::BG_SP,
                      PlatformKind::BG2}) {
        auto r = runPlatform(makePlatform(kind), baseRun(),
                             *sharedBundle());
        EXPECT_EQ(r.cmdStats.lifetime.count(), r.tally.flashReads);
        EXPECT_EQ(r.cmdStats.waitBefore.count(),
                  r.cmdStats.lifetime.count());
        // Lifetime >= flash time for every command (means too).
        EXPECT_GE(r.cmdStats.lifetime.mean(),
                  r.cmdStats.flashTime.mean());
        EXPECT_GE(r.cmdStats.waitBefore.min(), 0.0);
        EXPECT_GE(r.cmdStats.waitAfter.min(), 0.0);
    }
}

} // namespace
