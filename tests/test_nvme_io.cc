/**
 * @file
 * Tests for the NVMe queue-pair model and the regular block-I/O path
 * (§II-B2, §VI-G): queue-depth pipelining, functional read/write
 * round trips through the FTL with out-of-place updates, garbage
 * collection, acceleration-mode deferral, and DirectGraph isolation.
 */

#include <gtest/gtest.h>

#include "ssd/io_path.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::ssd;

SystemConfig
smallSystem()
{
    SystemConfig cfg;
    cfg.flash.channels = 4;
    cfg.flash.diesPerChannel = 2;
    cfg.flash.blocksPerPlane = 64;
    cfg.flash.pagesPerBlock = 8;
    return cfg;
}

TEST(NvmeQueue, SingleCommandLatency)
{
    NvmeQueueConfig qc;
    NvmeQueuePair q(qc);
    NvmeCommand cmd;
    cmd.tag = 7;
    NvmeCompletion c = q.submit(0, cmd, sim::microseconds(10));
    EXPECT_EQ(c.tag, 7u);
    EXPECT_EQ(c.submitted, qc.submitCost);
    EXPECT_EQ(c.fetched, c.submitted + qc.fetchCost);
    EXPECT_EQ(c.completed, c.fetched + sim::microseconds(10) +
                               qc.completeCost);
    EXPECT_EQ(c.latency(), c.completed - c.submitted);
    EXPECT_EQ(q.completedCount(), 1u);
    EXPECT_EQ(q.meanLatency(), c.latency());
}

TEST(NvmeQueue, PipelinesUpToQueueDepth)
{
    NvmeQueueConfig qc;
    qc.queueDepth = 4;
    NvmeQueuePair q(qc);
    // 8 commands of 10 us device time: with QD 4 they run in two
    // waves, not fully serialized.
    sim::Tick last = 0;
    for (int i = 0; i < 8; ++i) {
        auto c = q.submit(0, NvmeCommand{}, sim::microseconds(10));
        last = std::max(last, c.completed);
    }
    // Serial would be ~80 us of device time; QD-4 pipelining cuts
    // that roughly in half.
    EXPECT_LT(last, sim::microseconds(40));
    EXPECT_GT(last, sim::microseconds(20));
}

TEST(NvmeQueue, DepthOneSerializes)
{
    NvmeQueueConfig qc;
    qc.queueDepth = 1;
    NvmeQueuePair q(qc);
    auto a = q.submit(0, NvmeCommand{}, sim::microseconds(5));
    auto b = q.submit(0, NvmeCommand{}, sim::microseconds(5));
    EXPECT_GE(b.completed, a.completed + sim::microseconds(5));
}

class IoPathTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg = smallSystem();
        fw = std::make_unique<Firmware>(cfg);
        backend = std::make_unique<flash::FlashBackend>(cfg.flash);
        store = std::make_unique<flash::PageStore>(cfg.flash);
        io = std::make_unique<IoPath>(*fw, *backend, *store);
        data.assign(cfg.flash.pageSize, 0);
        for (std::size_t i = 0; i < data.size(); ++i)
            data[i] = static_cast<std::uint8_t>(i * 7);
    }

    SystemConfig cfg;
    std::unique_ptr<Firmware> fw;
    std::unique_ptr<flash::FlashBackend> backend;
    std::unique_ptr<flash::PageStore> store;
    std::unique_ptr<IoPath> io;
    std::vector<std::uint8_t> data;
};

TEST_F(IoPathTest, WriteReadRoundTrip)
{
    IoResult w = io->hostWrite(0, 42, data);
    ASSERT_TRUE(w.ok);
    EXPECT_GT(w.nvme.completed, 0u);

    std::vector<std::uint8_t> out(cfg.flash.pageSize, 0);
    IoResult r = io->hostRead(w.nvme.completed, 42, out);
    ASSERT_TRUE(r.ok);
    for (std::size_t i = 0; i < data.size(); ++i)
        ASSERT_EQ(out[i], data[i]);
}

TEST_F(IoPathTest, ReadOfUnmappedLpaFails)
{
    std::vector<std::uint8_t> out(cfg.flash.pageSize);
    EXPECT_FALSE(io->hostRead(0, 999, out).ok);
}

TEST_F(IoPathTest, OverwriteGoesOutOfPlace)
{
    ASSERT_TRUE(io->hostWrite(0, 5, data).ok);
    auto first = fw->ftl().translate(5, false);
    ASSERT_TRUE(first.has_value());

    std::vector<std::uint8_t> data2(cfg.flash.pageSize, 0xEE);
    ASSERT_TRUE(io->hostWrite(1000, 5, data2).ok);
    auto second = fw->ftl().translate(5, false);
    ASSERT_TRUE(second.has_value());
    EXPECT_NE(*first, *second); // Remapped, not overwritten.
    // Old page invalid, new valid.
    EXPECT_GE(fw->ftl().invalidPages(
                  store->addressCodec().blockOf(*first)),
              1u);
    // Reads return the new content.
    std::vector<std::uint8_t> out(cfg.flash.pageSize);
    ASSERT_TRUE(io->hostRead(2000, 5, out).ok);
    EXPECT_EQ(out[0], 0xEE);
}

TEST_F(IoPathTest, GarbageCollectionReclaimsDeadBlocks)
{
    // Fill one block's worth of LPAs, then overwrite them all so the
    // original block becomes fully invalid.
    unsigned per_block = cfg.flash.pagesPerBlock;
    for (Lpa l = 0; l < per_block; ++l)
        ASSERT_TRUE(io->hostWrite(0, l, data).ok);
    for (Lpa l = 0; l < per_block; ++l)
        ASSERT_TRUE(io->hostWrite(10000, l, data).ok);
    auto victims = fw->ftl().fullyInvalidBlocks();
    ASSERT_FALSE(victims.empty());
    std::uint64_t erased = io->garbageCollect(20000);
    EXPECT_EQ(erased, victims.size());
    EXPECT_TRUE(fw->ftl().fullyInvalidBlocks().empty());
    // Data still readable after GC.
    std::vector<std::uint8_t> out(cfg.flash.pageSize);
    for (Lpa l = 0; l < per_block; ++l)
        ASSERT_TRUE(io->hostRead(30000, l, out).ok) << l;
}

TEST_F(IoPathTest, AccelerationModeDefersRegularIo)
{
    // §VI-G: during a mini-batch, regular requests wait for its end.
    io->enterAccelerationMode(sim::microseconds(500));
    EXPECT_TRUE(io->inAccelerationMode(0));
    IoResult w = io->hostWrite(sim::microseconds(100), 3, data);
    ASSERT_TRUE(w.ok);
    EXPECT_EQ(w.deferredBy, sim::microseconds(400));
    EXPECT_GE(w.nvme.submitted, sim::microseconds(500));
    EXPECT_EQ(io->deferredCount(), 1u);
    // After the batch, requests run immediately.
    IoResult w2 = io->hostWrite(sim::microseconds(600), 4, data);
    EXPECT_EQ(w2.deferredBy, 0u);
    EXPECT_FALSE(io->inAccelerationMode(sim::microseconds(600)));
}

TEST_F(IoPathTest, RegularWritesAvoidReservedBlocks)
{
    auto reserved = fw->ftl().reserveBlocks(8);
    ASSERT_EQ(reserved.size(), 8u);
    for (Lpa l = 0; l < 100; ++l) {
        IoResult w = io->hostWrite(0, l, data);
        ASSERT_TRUE(w.ok);
        auto ppa = fw->ftl().translate(l, false);
        ASSERT_TRUE(ppa.has_value());
        EXPECT_FALSE(fw->ftl().ppaReserved(*ppa)) << l;
    }
}

TEST_F(IoPathTest, CorruptPageSurfacesAsReadError)
{
    ASSERT_TRUE(io->hostWrite(0, 9, data).ok);
    auto ppa = fw->ftl().translate(9, false);
    ASSERT_TRUE(ppa.has_value());
    store->corruptBit(*ppa, 123, 2);
    std::vector<std::uint8_t> out(cfg.flash.pageSize);
    // ECC detects the flip; the model surfaces an uncorrectable read.
    EXPECT_FALSE(io->hostRead(1000, 9, out).ok);
}

} // namespace

#include "directgraph/builder.h"
#include "graph/generator.h"
#include "ssd/host_interface.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::ssd;

TEST(HostInterface, VendorCommandFlow)
{
    SystemConfig cfg;
    cfg.flash.channels = 4;
    cfg.flash.diesPerChannel = 2;
    cfg.flash.blocksPerPlane = 64;
    cfg.flash.pagesPerBlock = 16;
    Firmware fw(cfg);
    flash::FlashBackend backend(cfg.flash);
    flash::PageStore store(cfg.flash);
    HostInterface host(fw);

    // 1. GetBlockList reserves + times the fetch.
    NvmeCompletion c1;
    auto blocks = host.getBlockList(0, 32, &c1);
    ASSERT_EQ(blocks.size(), 32u);
    EXPECT_GT(c1.completed, c1.submitted);
    for (auto b : blocks)
        EXPECT_TRUE(fw.ftl().isReserved(b));

    // 2. SetGnnConfig records the parameters.
    flash::GnnGlobalConfig gc;
    gc.hops = 2;
    gc.fanout = 5;
    gc.featureDim = 64;
    auto c2 = host.setGnnConfig(c1.completed, gc);
    EXPECT_GT(c2.completed, c1.completed);
    EXPECT_EQ(host.gnnConfig().fanout, 5);

    // 3. FlushDirectGraph programs verified pages through the queue.
    graph::Graph g = graph::generateRing(200, 8);
    graph::FeatureTable feat(64, 1);
    auto layout = dg::buildLayout(g, feat, cfg.flash, blocks);
    FlushResult flush = host.flushDirectGraph(c2.completed, layout, g,
                                              feat, store, backend);
    ASSERT_TRUE(flush.ok);
    EXPECT_EQ(flush.pagesWritten, layout.pages.size());
    EXPECT_GT(flush.finish, c2.completed);

    // 4. SubmitBatch gates the engine start after the command lands.
    NvmeCompletion c4;
    sim::Tick start = host.submitBatch(flush.finish, 64, &c4);
    EXPECT_EQ(start, c4.completed);
    EXPECT_GT(start, flush.finish);

    // The queue pair saw every vendor command.
    EXPECT_EQ(host.nvme().completedCount(),
              2u + layout.pages.size() + 1u);
}

} // namespace
