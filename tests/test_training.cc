/**
 * @file
 * Tests for the training substrate: numerical gradient checking of
 * the full backward pass (through ReLU, GEMM and sum aggregation),
 * loss descent under SGD, and consistency between trainStep's cached
 * forward and forwardWith.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/sampler.h"
#include "gnn/training.h"
#include "graph/generator.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::gnn;

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.hops = 2;
    m.fanout = 2;
    m.featureDim = 6;
    m.hiddenDim = 4;
    m.seed = 33;
    return m;
}

Subgraph
tinySubgraph(const graph::Graph &g, const ModelConfig &m)
{
    std::vector<graph::NodeId> targets = {0, 10};
    return csrSample(g, m, 0, targets);
}

TEST(Training, InitMatchesMakeWeights)
{
    ModelConfig m = tinyModel();
    TrainState st = TrainState::init(m);
    ASSERT_EQ(st.weights.size(), 2u);
    EXPECT_EQ(st.weights[0].size(),
              std::size_t{m.hiddenDim} * m.featureDim);
    EXPECT_EQ(st.weights[1].size(),
              std::size_t{m.hiddenDim} * m.hiddenDim);
    auto w1 = makeWeights(m.seed, 1, m.hiddenDim, m.featureDim);
    EXPECT_EQ(st.weights[0], w1);
}

TEST(Training, ForwardWithInitialWeightsMatchesForward)
{
    graph::Graph g = graph::generateRing(50, 5);
    graph::FeatureTable feat(6, 2);
    ModelConfig m = tinyModel();
    Subgraph sg = tinySubgraph(g, m);
    TrainState st = TrainState::init(m);
    auto a = forward(sg, feat, m);
    auto b = forwardWith(sg, feat, m, st);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t)
        for (std::size_t i = 0; i < a[t].size(); ++i)
            EXPECT_FLOAT_EQ(a[t][i], b[t][i]);
}

TEST(Training, NumericalGradientCheck)
{
    graph::Graph g = graph::generateRing(40, 4);
    graph::FeatureTable feat(6, 2);
    ModelConfig m = tinyModel();
    Subgraph sg = tinySubgraph(g, m);
    TrainState st = TrainState::init(m);

    std::vector<std::vector<float>> grads;
    StepResult r = trainStep(sg, feat, m, st, /*lr=*/0.0f, &grads);
    ASSERT_EQ(grads.size(), 2u);
    EXPECT_GT(r.gradNorm, 0.0);

    // Central differences on a sample of weights in every layer.
    const double eps = 1e-3;
    for (unsigned l = 0; l < 2; ++l) {
        for (std::size_t idx = 0; idx < grads[l].size(); idx += 5) {
            TrainState plus = st, minus = st;
            plus.weights[l][idx] += static_cast<float>(eps);
            minus.weights[l][idx] -= static_cast<float>(eps);
            double lp = evaluateLoss(sg, feat, m, plus);
            double lm = evaluateLoss(sg, feat, m, minus);
            double numeric = (lp - lm) / (2 * eps);
            double analytic = grads[l][idx];
            // Absolute-plus-relative tolerance: ReLU kinks make a few
            // entries noisy, but the bulk must match closely.
            EXPECT_NEAR(analytic, numeric,
                        2e-3 + 0.05 * std::abs(numeric))
                << "layer " << l << " idx " << idx;
        }
    }
}

TEST(Training, LossDecreasesUnderSgd)
{
    graph::GeneratorParams gp;
    gp.nodes = 400;
    gp.avgDegree = 12;
    graph::Graph g = graph::generatePowerLaw(gp);
    graph::FeatureTable feat(6, 5);
    ModelConfig m = tinyModel();
    TrainState st = TrainState::init(m);

    std::vector<graph::NodeId> targets;
    for (graph::NodeId t = 0; t < 32; ++t)
        targets.push_back(t * 11 % 400);
    Subgraph sg = csrSample(g, m, 0, targets);

    double first = evaluateLoss(sg, feat, m, st);
    double prev = first;
    for (int step = 0; step < 60; ++step) {
        StepResult r = trainStep(sg, feat, m, st, 0.5f);
        EXPECT_GE(r.loss, 0.0);
        prev = r.loss;
    }
    double final = evaluateLoss(sg, feat, m, st);
    EXPECT_LT(final, 0.6 * first)
        << "loss " << first << " -> " << final;
    EXPECT_LE(final, prev * 1.05);
}

TEST(Training, StochasticEpochsConverge)
{
    // Mini-batch SGD over changing batches still drives the loss down
    // on a held-out batch.
    graph::GeneratorParams gp;
    gp.nodes = 600;
    gp.avgDegree = 10;
    graph::Graph g = graph::generatePowerLaw(gp);
    graph::FeatureTable feat(6, 5);
    ModelConfig m = tinyModel();
    TrainState st = TrainState::init(m);

    std::vector<graph::NodeId> held;
    for (graph::NodeId t = 0; t < 24; ++t)
        held.push_back(t * 17 % 600);
    Subgraph held_sg = csrSample(g, m, 9999, held);
    double before = evaluateLoss(held_sg, feat, m, st);

    sim::Pcg32 rng(3);
    for (int step = 0; step < 80; ++step) {
        std::vector<graph::NodeId> batch(16);
        for (auto &t : batch)
            t = rng.below(600);
        Subgraph sg = csrSample(g, m, static_cast<std::uint64_t>(step),
                                batch);
        trainStep(sg, feat, m, st, 0.3f);
    }
    double after = evaluateLoss(held_sg, feat, m, st);
    EXPECT_LT(after, 0.8 * before);
}

TEST(Training, MacCountsReported)
{
    graph::Graph g = graph::generateRing(30, 4);
    graph::FeatureTable feat(6, 2);
    ModelConfig m = tinyModel();
    Subgraph sg = tinySubgraph(g, m);
    TrainState st = TrainState::init(m);
    StepResult r = trainStep(sg, feat, m, st, 0.1f);
    EXPECT_GT(r.macsForward, 0u);
    EXPECT_GT(r.macsBackward, 0u);
    // Backward is ~2x forward for GEMM layers.
    EXPECT_GE(r.macsBackward, r.macsForward);
}

TEST(Training, RejectsMeanAggregation)
{
    // tinySubgraph samples targets {0, 10}, so the ring needs at
    // least 11 nodes; a 10-node ring made degree(10) read past the
    // CSR offsets array (found by ASan while validating PR 9's
    // checked builds).
    graph::Graph g = graph::generateRing(20, 2);
    graph::FeatureTable feat(6, 2);
    ModelConfig m = tinyModel();
    m.aggregation = Aggregation::Mean;
    Subgraph sg = tinySubgraph(g, m);
    TrainState st = TrainState::init(m);
    EXPECT_DEATH({ trainStep(sg, feat, m, st, 0.1f); },
                 "vector_sum");
}

} // namespace
