/**
 * @file
 * End-to-end tests of the public BeaconGnnSystem API: ingest + flush,
 * mini-batch serving with functional embeddings, equivalence with the
 * golden sampler + forward pass, scrubbing after fault injection, and
 * wear-levelling reclamation preserving results.
 */

#include <gtest/gtest.h>

#include "core/beacongnn.h"
#include "gnn/compute.h"
#include "graph/generator.h"

#include <unordered_set>

namespace {

using namespace beacongnn;

SystemOptions
smallOptions(platforms::PlatformKind kind = platforms::PlatformKind::BG2)
{
    SystemOptions o;
    o.system.flash.channels = 4;
    o.system.flash.diesPerChannel = 2;
    o.system.flash.blocksPerPlane = 256;
    o.system.flash.pagesPerBlock = 32;
    o.platform = kind;
    o.model.hops = 2;
    o.model.fanout = 3;
    o.model.hiddenDim = 16;
    o.model.seed = 21;
    return o;
}

graph::Graph
testGraph()
{
    graph::GeneratorParams p;
    p.nodes = 800;
    p.avgDegree = 30;
    p.maxDegree = 3000;
    p.seed = 17;
    return graph::generatePowerLaw(p);
}

TEST(BeaconGnnSystem, IngestFlushesVerifiedDirectGraph)
{
    BeaconGnnSystem sys(testGraph(), graph::FeatureTable(24, 3),
                        smallOptions());
    EXPECT_GT(sys.flushTime(), 0u);
    EXPECT_GT(sys.layout().pages.size(), 0u);
    EXPECT_EQ(sys.pageStore().programmedPages(),
              sys.layout().pages.size());
    EXPECT_GT(sys.buildStats().rawBytes, 0u);
    // All DirectGraph blocks are reserved (isolated from regular IO).
    for (auto b : sys.layout().blocks)
        EXPECT_TRUE(sys.firmware().ftl().isReserved(b));
}

TEST(BeaconGnnSystem, MiniBatchMatchesGoldenPipeline)
{
    graph::Graph g = testGraph();
    graph::FeatureTable feat(24, 3);
    SystemOptions opts = smallOptions();
    BeaconGnnSystem sys(g, feat, opts);

    std::vector<graph::NodeId> targets = {1, 99, 500};
    MiniBatchResult r = sys.runMiniBatch(targets);
    EXPECT_TRUE(r.prep.ok);
    ASSERT_EQ(r.embeddings.size(), targets.size());
    EXPECT_EQ(r.embeddings[0].size(), sys.model().hiddenDim);

    // Golden: layout-aware sampling + forward pass must agree in
    // subgraph size and in every hop-0 embedding value.
    gnn::ModelConfig m = sys.model();
    gnn::Subgraph golden =
        gnn::layoutSample(sys.graph(), sys.layout(), m, 0, targets);
    EXPECT_EQ(r.prep.subgraph.size(), golden.size());

    auto golden_out = gnn::forward(golden, feat, m);
    ASSERT_EQ(golden_out.size(), r.embeddings.size());
    // Embedding sets agree as multisets of vectors (entry order can
    // differ between streaming and recursive expansion).
    for (const auto &want : golden_out) {
        bool found = false;
        for (const auto &got : r.embeddings) {
            bool same = got.size() == want.size();
            for (std::size_t i = 0; same && i < got.size(); ++i)
                same = got[i] == want[i];
            found |= same;
        }
        EXPECT_TRUE(found);
    }
}

TEST(BeaconGnnSystem, ConsecutiveBatchesAdvanceTime)
{
    BeaconGnnSystem sys(testGraph(), graph::FeatureTable(16, 3),
                        smallOptions());
    std::vector<graph::NodeId> t1 = {1, 2};
    std::vector<graph::NodeId> t2 = {3, 4};
    auto r1 = sys.runMiniBatch(t1);
    auto r2 = sys.runMiniBatch(t2);
    EXPECT_GT(r2.prep.start, r1.prep.start);
    EXPECT_GE(r2.prep.finish, r1.prep.finish);
    // Compute pipelines behind prep on the accelerator.
    EXPECT_GE(r2.finish, r1.finish);
    // Different batch ids draw different samples (w.h.p.).
    auto c1 = r1.prep.subgraph.hopCounts();
    auto c2 = r2.prep.subgraph.hopCounts();
    EXPECT_EQ(c1[0], c2[0]);
}

TEST(BeaconGnnSystem, ScrubRepairsInjectedFault)
{
    graph::Graph g = testGraph();
    graph::FeatureTable feat(24, 3);
    BeaconGnnSystem sys(g, feat, smallOptions());

    std::vector<graph::NodeId> targets = {5, 10};
    auto before = sys.runMiniBatch(targets);

    // Inject a retention error into a primary page, scrub, re-run.
    flash::Ppa victim = sys.layout().nodes[5].primary.page();
    ASSERT_TRUE(sys.corruptBit(victim, 33, 4));
    ssd::ScrubReport rep = sys.scrub();
    EXPECT_GE(rep.errorsFound, 1u);
    EXPECT_GE(rep.blocksReprogrammed, 1u);

    auto after = sys.runMiniBatch(targets);
    EXPECT_TRUE(after.prep.ok);
    EXPECT_EQ(after.prep.subgraph.size(), before.prep.subgraph.size());
}

TEST(BeaconGnnSystem, CorruptionWithoutScrubAborts)
{
    graph::Graph g = testGraph();
    BeaconGnnSystem sys(g, graph::FeatureTable(24, 3), smallOptions());
    // Flip the type byte of a target's primary section header.
    dg::DgAddress a = sys.layout().primaryOf(7);
    const dg::SectionPlacement *sp = sys.layout().find(a);
    ASSERT_NE(sp, nullptr);
    ASSERT_TRUE(sys.corruptBit(a.page(), sp->byteOffset, 6));
    std::vector<graph::NodeId> targets = {7};
    auto r = sys.runMiniBatch(targets);
    // §VI-E: the on-die check catches it and control returns to
    // firmware; the batch reports failure rather than bad data.
    EXPECT_FALSE(r.prep.ok);
    EXPECT_GT(r.prep.tally.abortedCommands, 0u);
}

TEST(BeaconGnnSystem, ReclaimPreservesBehaviour)
{
    graph::Graph g = testGraph();
    graph::FeatureTable feat(24, 3);
    BeaconGnnSystem sys(g, feat, smallOptions());

    std::vector<graph::NodeId> targets = {11, 222};
    auto before = sys.runMiniBatch(targets);
    auto old_blocks = sys.layout().blocks;

    // Age the regular blocks so the P/E gap crosses the threshold:
    // write through the regular FTL path, then wear those blocks.
    auto &store = sys.pageStore();
    auto &ftl = sys.firmware().ftl();
    std::vector<std::uint8_t> data(store.pageBytes(), 0xCD);
    std::unordered_set<flash::BlockId> worn;
    for (ssd::Lpa l = 0; l < 64; ++l) {
        auto p = ftl.translate(l, true);
        ASSERT_TRUE(p.has_value());
        worn.insert(store.addressCodec().blockOf(*p));
    }
    for (auto b : worn)
        for (int i = 0; i < 100; ++i)
            store.eraseBlock(b);
    ASSERT_GT(ftl.peGap(store), 10.0);
    ASSERT_TRUE(sys.reclaimIfNeeded(10.0));
    // Migrated to different blocks.
    bool moved = sys.layout().blocks != old_blocks;
    EXPECT_TRUE(moved);

    // Note: reclamation rewrites physical addresses, so sampled
    // subgraphs keep their SHAPE; node-level draws may differ because
    // in-page splits can change with the new packing.
    auto after = sys.runMiniBatch(targets);
    EXPECT_TRUE(after.prep.ok);
    auto ca = after.prep.subgraph.hopCounts();
    auto cb = before.prep.subgraph.hopCounts();
    ASSERT_EQ(ca.size(), cb.size());
    EXPECT_EQ(ca[0], cb[0]);
}

TEST(BeaconGnnSystem, PlatformChoiceAffectsTimingNotResults)
{
    graph::Graph g = testGraph();
    graph::FeatureTable feat(16, 3);
    BeaconGnnSystem fast(g, feat,
                         smallOptions(platforms::PlatformKind::BG2));
    BeaconGnnSystem slow(
        g, feat, smallOptions(platforms::PlatformKind::BG_DGSP));
    std::vector<graph::NodeId> targets(64);
    for (std::size_t i = 0; i < targets.size(); ++i)
        targets[i] = static_cast<graph::NodeId>(i * 7 % 800);
    auto a = fast.runMiniBatch(targets);
    auto b = slow.runMiniBatch(targets);
    // Same sampled subgraph size, same embedding multiset.
    EXPECT_EQ(a.prep.subgraph.size(), b.prep.subgraph.size());
    // BG-2 prepares no slower than BG-DGSP (5% latency-constant
    // slack: at trivial load the two paths are nearly equal).
    EXPECT_LE(static_cast<double>(a.prep.finish - a.prep.start),
              1.05 * static_cast<double>(b.prep.finish - b.prep.start));
}

} // namespace
