/**
 * @file
 * MetricRegistry tests: instrument lifecycle (get-or-create, kind
 * collision, lookup), merge semantics per kind, the CmdStats /
 * PrepTally publish/fromRegistry round trip, snapshot export, the
 * Chrome-trace sink, and the golden test pinning RunResult-from-
 * registry to the pre-refactor values for a CC and a BG-2 run.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "platforms/platform.h"
#include "platforms/runner.h"
#include "sim/metrics.h"
#include "sim/trace_events.h"

namespace {

using namespace beacongnn;
using sim::MetricRegistry;

// ==================================================================
// Registry basics.
// ==================================================================

TEST(MetricRegistry, GetOrCreateReturnsSameInstrument)
{
    MetricRegistry reg;
    sim::Counter &a = reg.counter("flash.reads");
    a.add(3);
    sim::Counter &b = reg.counter("flash.reads");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_TRUE(reg.contains("flash.reads"));
    EXPECT_FALSE(reg.contains("flash.writes"));
}

TEST(MetricRegistry, KindCollisionIsFatal)
{
    MetricRegistry reg;
    reg.counter("x.y");
    EXPECT_DEATH({ reg.gauge("x.y"); }, "already registered");
}

TEST(MetricRegistry, FindIsKindCheckedAndConst)
{
    MetricRegistry reg;
    reg.counter("a").add(7);
    reg.gauge("g").set(1.5);
    reg.accum("m").add(2.0);
    const MetricRegistry &cref = reg;
    ASSERT_NE(cref.findCounter("a"), nullptr);
    EXPECT_EQ(cref.findCounter("a")->value(), 7u);
    EXPECT_EQ(cref.findCounter("g"), nullptr); // Wrong kind.
    EXPECT_EQ(cref.findGauge("a"), nullptr);
    EXPECT_EQ(cref.findAccum("missing"), nullptr);
    ASSERT_NE(cref.findAccum("m"), nullptr);
    EXPECT_DOUBLE_EQ(cref.findAccum("m")->sum(), 2.0);
}

TEST(MetricRegistry, HistogramGeometryAppliesOnCreation)
{
    MetricRegistry reg;
    sim::Histogram &h = reg.histogram("h", 10.0, 32);
    EXPECT_DOUBLE_EQ(h.bucketWidth(), 10.0);
    EXPECT_EQ(h.buckets().size(), 32u);
    // Second request with different geometry returns the original.
    sim::Histogram &again = reg.histogram("h", 99.0, 4);
    EXPECT_EQ(&h, &again);
    EXPECT_EQ(again.buckets().size(), 32u);
}

TEST(MetricRegistry, ForEachIsSortedByName)
{
    MetricRegistry reg;
    reg.counter("b");
    reg.counter("a.z");
    reg.counter("a.a");
    std::vector<std::string> names;
    reg.forEach([&](const std::string &n,
                    const MetricRegistry::Instrument &) {
        names.push_back(n);
    });
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a.a");
    EXPECT_EQ(names[1], "a.z");
    EXPECT_EQ(names[2], "b");
}

// ==================================================================
// Merge semantics.
// ==================================================================

TEST(MetricRegistry, MergeCombinesEveryKind)
{
    MetricRegistry a;
    a.counter("c").add(10);
    a.gauge("g").set(1.0);
    a.accum("m").add(2.0);
    a.histogram("h", 1.0, 8).add(3.0);
    a.interval("i").add(0, 5);

    MetricRegistry b;
    b.counter("c").add(32);
    b.counter("only_b").add(1);
    b.gauge("g").set(4.0);
    b.accum("m").add(6.0);
    b.histogram("h", 1.0, 8).add(3.5);
    b.interval("i").add(5, 9); // Contiguous: coalesces with [0,5).

    a.merge(b);
    EXPECT_EQ(a.counter("c").value(), 42u);
    EXPECT_EQ(a.counter("only_b").value(), 1u);
    EXPECT_DOUBLE_EQ(a.gauge("g").value(), 4.0); // Last-write-wins.
    EXPECT_EQ(a.accum("m").count(), 2u);
    EXPECT_DOUBLE_EQ(a.accum("m").sum(), 8.0);
    EXPECT_EQ(a.histogram("h").summary().count(), 2u);
    EXPECT_EQ(a.interval("i").get().size(), 1u);
    EXPECT_EQ(a.interval("i").busy(), 9u);
}

TEST(MetricRegistry, MergeIntoEmptyIsExactCopy)
{
    MetricRegistry src;
    src.accum("m").add(1.25);
    src.accum("m").add(-3.0);
    src.histogram("h", 10.0, 1024).add(17.0);
    src.interval("i").add(3, 7);
    src.interval("i").add(10, 12);

    MetricRegistry dst;
    dst.merge(src);
    const sim::Accumulator *m = dst.findAccum("m");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->count(), 2u);
    EXPECT_DOUBLE_EQ(m->sum(), -1.75);
    EXPECT_DOUBLE_EQ(m->min(), -3.0);
    EXPECT_DOUBLE_EQ(m->max(), 1.25);
    const sim::Histogram *h = dst.findHistogram("h");
    ASSERT_NE(h, nullptr);
    EXPECT_DOUBLE_EQ(h->bucketWidth(), 10.0);
    EXPECT_EQ(h->buckets().size(), 1024u);
    const sim::IntervalTrace *i = dst.findInterval("i");
    ASSERT_NE(i, nullptr);
    EXPECT_EQ(i->get().size(), 2u);
    EXPECT_EQ(i->busy(), 6u);
}

TEST(IntervalTraceMerge, UnionReCoalescesOverlaps)
{
    sim::IntervalTrace a;
    a.add(0, 10);
    a.add(20, 30);
    sim::IntervalTrace b;
    b.add(5, 22); // Bridges both of a's spans.
    a.merge(b);
    EXPECT_EQ(a.get().size(), 1u);
    EXPECT_EQ(a.busy(), 30u);
}

TEST(AccumulatorMerge, MatchesMergedFriend)
{
    sim::Accumulator a, b;
    a.add(1.0);
    a.add(5.0);
    b.add(-2.0);
    sim::Accumulator via_friend = merged(a, b);
    sim::Accumulator via_member = a;
    via_member.merge(b);
    EXPECT_EQ(via_member.count(), via_friend.count());
    EXPECT_DOUBLE_EQ(via_member.sum(), via_friend.sum());
    EXPECT_DOUBLE_EQ(via_member.min(), via_friend.min());
    EXPECT_DOUBLE_EQ(via_member.max(), via_friend.max());
}

// ==================================================================
// CmdStats / PrepTally aggregation API (the runBatch dedup).
// ==================================================================

TEST(CmdStats, MergeAccumulatesAllFields)
{
    engines::CmdStats a, b;
    a.waitBefore.add(1.0);
    a.lifetime.add(10.0);
    a.lifetimeHist.add(10.0);
    b.waitBefore.add(3.0);
    b.flashTime.add(2.0);
    b.lifetime.add(20.0);
    b.lifetimeHist.add(20.0);
    a.merge(b);
    EXPECT_EQ(a.waitBefore.count(), 2u);
    EXPECT_DOUBLE_EQ(a.waitBefore.sum(), 4.0);
    EXPECT_EQ(a.flashTime.count(), 1u);
    EXPECT_EQ(a.lifetime.count(), 2u);
    EXPECT_EQ(a.lifetimeHist.summary().count(), 2u);
}

TEST(CmdStats, PublishFromRegistryRoundTrips)
{
    engines::CmdStats batch1, batch2;
    batch1.waitBefore.add(1.5);
    batch1.flashTime.add(0.5);
    batch1.waitAfter.add(0.25);
    batch1.lifetime.add(2.25);
    batch1.lifetimeHist.add(2.25);
    batch2.lifetime.add(7.0);
    batch2.lifetimeHist.add(7.0);

    MetricRegistry reg;
    batch1.publish(reg);
    batch2.publish(reg);

    engines::CmdStats manual = batch1;
    manual.merge(batch2);
    engines::CmdStats round =
        engines::CmdStats::fromRegistry(reg);
    EXPECT_EQ(round.lifetime.count(), manual.lifetime.count());
    EXPECT_DOUBLE_EQ(round.lifetime.sum(), manual.lifetime.sum());
    EXPECT_DOUBLE_EQ(round.waitBefore.sum(), manual.waitBefore.sum());
    EXPECT_EQ(round.lifetimeHist.summary().count(),
              manual.lifetimeHist.summary().count());
    EXPECT_DOUBLE_EQ(round.lifetimeHist.percentile(50),
                     manual.lifetimeHist.percentile(50));
}

TEST(CmdStats, FromRegistryOnEmptyIsDefault)
{
    MetricRegistry reg;
    engines::CmdStats s = engines::CmdStats::fromRegistry(reg);
    EXPECT_EQ(s.lifetime.count(), 0u);
    EXPECT_EQ(s.lifetimeHist.summary().count(), 0u);
}

TEST(PrepTally, MergeAndRegistryRoundTrip)
{
    engines::PrepTally a, b;
    a.flashReads = 10;
    a.channelBytes = 4096;
    a.hostCpuBusy = 77;
    b.flashReads = 5;
    b.pcieBytes = 512;
    b.abortedCommands = 1;

    MetricRegistry reg;
    a.publish(reg);
    b.publish(reg);
    a.merge(b);
    engines::PrepTally round =
        engines::PrepTally::fromRegistry(reg);
    EXPECT_EQ(round.flashReads, a.flashReads);
    EXPECT_EQ(round.channelBytes, a.channelBytes);
    EXPECT_EQ(round.pcieBytes, a.pcieBytes);
    EXPECT_EQ(round.hostCpuBusy, a.hostCpuBusy);
    EXPECT_EQ(round.abortedCommands, a.abortedCommands);
}

// ==================================================================
// Snapshot export.
// ==================================================================

TEST(MetricRegistry, JsonSnapshotListsEveryInstrument)
{
    MetricRegistry reg;
    reg.counter("flash.reads").add(7);
    reg.gauge("run.die_util").set(0.25);
    reg.accum("engine.cmd.lifetime_us").add(3.5);
    reg.histogram("h", 2.0, 4).add(5.0);
    reg.interval("i").add(1, 4);
    std::ostringstream os;
    reg.writeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"flash.reads\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"gauge\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"accumulator\""),
              std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"interval\""), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}'); // An embeddable object, no newline.
}

TEST(MetricRegistry, CsvSnapshotHasHeaderAndRows)
{
    MetricRegistry reg;
    reg.counter("a").add(1);
    reg.accum("b").add(2.0);
    std::ostringstream os;
    MetricRegistry::writeCsvHeader(os, "platform,");
    reg.writeCsv(os, "BG-2,");
    std::string csv = os.str();
    EXPECT_NE(csv.find("platform,name,kind"), std::string::npos);
    EXPECT_NE(csv.find("BG-2,a,counter"), std::string::npos);
    EXPECT_NE(csv.find("BG-2,b,accumulator"), std::string::npos);
}

// ==================================================================
// Chrome-trace sink.
// ==================================================================

TEST(TraceSink, EmitsCompleteAndAsyncEvents)
{
    sim::TraceSink sink;
    sink.setProcessName(1, "flash dies");
    sink.setThreadName(1, 3, "ch0.die3");
    sink.complete("sense", "flash", 1, 3, sim::Tick{1500},
                  sim::Tick{4500});
    std::uint64_t id = sink.nextId();
    sink.beginAsync("cmd", "cmd", id, 1000);
    sink.endAsync("cmd", "cmd", id, 9000);
    EXPECT_EQ(sink.events(), 3u);
    EXPECT_EQ(sink.dropped(), 0u);

    std::ostringstream os;
    sink.write(os);
    std::string json = os.str();
    EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("ch0.die3"), std::string::npos);
    // Tick 1500 ns = 1.500 us in the exported microsecond clock.
    EXPECT_NE(json.find("\"ts\": 1.500"), std::string::npos);
}

TEST(TraceSink, DropsBeyondCapacity)
{
    sim::TraceSink sink(2);
    sink.complete("a", "c", 0, 0, 0, 1);
    sink.complete("b", "c", 0, 0, 1, 2);
    sink.complete("c", "c", 0, 0, 2, 3);
    EXPECT_EQ(sink.events(), 2u);
    EXPECT_EQ(sink.dropped(), 1u);
}

// ==================================================================
// End-to-end: RunResult populated from the registry must equal the
// pre-refactor values (golden, recorded before the registry landed),
// and the snapshot must cover every layer's namespace.
// ==================================================================

class MetricsGolden : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        gnn::ModelConfig model;
        model.hops = 2;
        model.fanout = 2;
        model.hiddenDim = 128;
        model.seed = 0xBEAC0;
        graph::WorkloadSpec spec = graph::workload("amazon");
        spec.simNodes = 2000;
        platforms::RunConfig rc;
        rc.batchSize = 16;
        rc.batches = 2;
        bundle = platforms::makeBundle(spec, rc.system.flash, model)
                     .release();
        run = rc;
    }

    static void
    TearDownTestSuite()
    {
        delete bundle;
        bundle = nullptr;
    }

    static platforms::WorkloadBundle *bundle;
    static platforms::RunConfig run;
};

platforms::WorkloadBundle *MetricsGolden::bundle = nullptr;
platforms::RunConfig MetricsGolden::run;

TEST_F(MetricsGolden, CcRunMatchesPreRefactorValues)
{
    platforms::RunResult r = platforms::runPlatform(
        platforms::makePlatform(platforms::PlatformKind::CC), run,
        *bundle);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.targets, 32u);
    EXPECT_EQ(r.prepTime, 876780u);
    EXPECT_EQ(r.totalTime, 878155u);
    EXPECT_DOUBLE_EQ(r.throughput, 36440.036212285988);
    EXPECT_EQ(r.tally.flashReads, 458u);
    EXPECT_EQ(r.tally.channelBytes, 1875968u);
    EXPECT_EQ(r.tally.dramBytes, 1875968u);
    EXPECT_EQ(r.tally.pcieBytes, 1965568u);
    EXPECT_EQ(r.tally.hostCpuBusy, 2037440u);
    EXPECT_EQ(r.tally.featureBytes, 89600u);
    EXPECT_EQ(r.tally.abortedCommands, 0u);
    EXPECT_EQ(r.cmdStats.lifetime.count(), 458u);
    EXPECT_DOUBLE_EQ(r.cmdStats.lifetime.sum(), 28972.661999999989);
    EXPECT_DOUBLE_EQ(r.cmdStats.lifetime.mean(), 63.259087336244519);
    EXPECT_DOUBLE_EQ(r.cmdStats.waitBefore.sum(), 23315.040000000074);
    EXPECT_DOUBLE_EQ(r.cmdStats.flashTime.sum(), 3718.9599999999787);
    EXPECT_DOUBLE_EQ(r.cmdStats.waitAfter.sum(), 1938.6619999999971);
    EXPECT_EQ(r.cmdStats.lifetimeHist.summary().count(), 458u);
    EXPECT_DOUBLE_EQ(r.cmdStats.lifetimeHist.percentile(50),
                     56.274509803921568);
    EXPECT_DOUBLE_EQ(r.cmdStats.lifetimeHist.percentile(99),
                     140.84000000000003);
    EXPECT_DOUBLE_EQ(r.dieUtil, 0.012223781678633043);
    EXPECT_DOUBLE_EQ(r.channelUtil, 0.16689536585226983);
    EXPECT_DOUBLE_EQ(r.coreUtil, 0.052154801828834314);
    EXPECT_DOUBLE_EQ(r.dramUtil, 0.26703258536363172);
    EXPECT_DOUBLE_EQ(r.pcieUtil, 0.27978659803793182);
    EXPECT_EQ(r.accelBusy, 2750u);
    EXPECT_EQ(r.hostBusy, 2037440u);
    EXPECT_DOUBLE_EQ(r.energy.total(), 0.0043356781544000005);
    EXPECT_DOUBLE_EQ(r.energy.flash, 0.00013740000000000001);
    EXPECT_DOUBLE_EQ(r.energy.dram, 0.0003282944);
    EXPECT_DOUBLE_EQ(r.energy.pcie, 0.00029483519999999998);
    EXPECT_DOUBLE_EQ(r.energy.cores, 6.4120000000000003e-05);
    EXPECT_DOUBLE_EQ(r.energy.accel, 3.8252544000000002e-06);
    EXPECT_DOUBLE_EQ(r.energy.engines, 0.0);
    EXPECT_DOUBLE_EQ(r.energy.channel, 0.0001875968);
    EXPECT_DOUBLE_EQ(r.energy.hostCpu, 0.0030561600000000005);
    EXPECT_DOUBLE_EQ(r.energy.background, 0.00026344649999999998);
    EXPECT_DOUBLE_EQ(r.avgPowerW, 4.9372584047235399);
    EXPECT_EQ(r.hops.size(), 3u);
    EXPECT_EQ(r.lastBatchStart, 442652u);
    EXPECT_EQ(r.lastSubgraph.size(), 112u);
}

TEST_F(MetricsGolden, Bg2RunMatchesPreRefactorValues)
{
    platforms::RunResult r = platforms::runPlatform(
        platforms::makePlatform(platforms::PlatformKind::BG2), run,
        *bundle);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.targets, 32u);
    EXPECT_EQ(r.prepTime, 121025u);
    EXPECT_EQ(r.totalTime, 133589u);
    EXPECT_DOUBLE_EQ(r.throughput, 239540.68074467208);
    EXPECT_EQ(r.tally.flashReads, 234u);
    EXPECT_EQ(r.tally.channelBytes, 95768u);
    EXPECT_EQ(r.tally.dramBytes, 89600u);
    EXPECT_EQ(r.tally.pcieBytes, 0u);
    EXPECT_EQ(r.tally.hostCpuBusy, 1920u);
    EXPECT_EQ(r.tally.featureBytes, 89600u);
    EXPECT_EQ(r.tally.abortedCommands, 0u);
    EXPECT_EQ(r.cmdStats.lifetime.count(), 234u);
    EXPECT_DOUBLE_EQ(r.cmdStats.lifetime.sum(), 1228.8400000000004);
    EXPECT_DOUBLE_EQ(r.cmdStats.lifetime.mean(), 5.251452991452993);
    EXPECT_DOUBLE_EQ(r.cmdStats.waitBefore.sum(), 190.88999999999999);
    EXPECT_DOUBLE_EQ(r.cmdStats.flashTime.sum(), 874.57000000000244);
    EXPECT_DOUBLE_EQ(r.cmdStats.waitAfter.sum(), 163.37999999999988);
    EXPECT_EQ(r.cmdStats.lifetimeHist.summary().count(), 234u);
    EXPECT_DOUBLE_EQ(r.cmdStats.lifetimeHist.percentile(50),
                     5.1769911504424782);
    EXPECT_DOUBLE_EQ(r.cmdStats.lifetimeHist.percentile(99),
                     12.869999999999999);
    EXPECT_DOUBLE_EQ(r.dieUtil, 0.044145429264385541);
    EXPECT_DOUBLE_EQ(r.channelUtil, 0.056006669710829488);
    EXPECT_DOUBLE_EQ(r.coreUtil, 0.0);
    EXPECT_DOUBLE_EQ(r.dramUtil, 0.16767847652127046);
    EXPECT_DOUBLE_EQ(r.pcieUtil, 0.0);
    EXPECT_EQ(r.accelBusy, 25128u);
    EXPECT_EQ(r.hostBusy, 1920u);
    EXPECT_DOUBLE_EQ(r.energy.total(), 0.0001424415136);
    EXPECT_DOUBLE_EQ(r.energy.flash, 7.0199999999999999e-05);
    EXPECT_DOUBLE_EQ(r.energy.dram, 1.5679999999999999e-05);
    EXPECT_DOUBLE_EQ(r.energy.pcie, 0.0);
    EXPECT_DOUBLE_EQ(r.energy.cores, 0.0);
    EXPECT_DOUBLE_EQ(r.energy.accel, 3.9975936000000001e-06);
    EXPECT_DOUBLE_EQ(r.energy.engines, 3.0420000000000004e-08);
    EXPECT_DOUBLE_EQ(r.energy.channel, 9.5767999999999995e-06);
    EXPECT_DOUBLE_EQ(r.energy.hostCpu, 2.8799999999999995e-06);
    EXPECT_DOUBLE_EQ(r.energy.background, 4.0076700000000002e-05);
    EXPECT_DOUBLE_EQ(r.avgPowerW, 1.0662667854389207);
    EXPECT_EQ(r.hops.size(), 3u);
    EXPECT_EQ(r.lastBatchStart, 61215u);
    EXPECT_EQ(r.lastSubgraph.size(), 112u);
}

TEST_F(MetricsGolden, SnapshotCoversEveryLayerNamespace)
{
    MetricRegistry reg;
    platforms::RunResult r = platforms::runPlatform(
        platforms::makePlatform(platforms::PlatformKind::BG2), run,
        *bundle, &reg);
    ASSERT_TRUE(r.ok);
    ASSERT_FALSE(reg.empty());

    // One representative instrument per layer.
    ASSERT_NE(reg.findCounter("flash.reads"), nullptr);
    EXPECT_GT(reg.findCounter("flash.reads")->value(), 0u);
    ASSERT_NE(reg.findCounter("flash.ch0.die0.sense_ticks"), nullptr);
    ASSERT_NE(reg.findCounter("ssd.firmware.core_busy"), nullptr);
    ASSERT_NE(reg.findCounter("ssd.ftl.translations"), nullptr);
    ASSERT_NE(reg.findAccum("engine.cmd.lifetime_us"), nullptr);
    EXPECT_EQ(reg.findAccum("engine.cmd.lifetime_us")->count(),
              r.cmdStats.lifetime.count());
    ASSERT_NE(reg.findCounter("engine.router.frames_parsed"), nullptr);
    ASSERT_NE(reg.findCounter("engine.sampler.executed"), nullptr);
    ASSERT_NE(reg.findCounter("accel.macs"), nullptr);
    ASSERT_NE(reg.findGauge("energy.total_j"), nullptr);
    EXPECT_DOUBLE_EQ(reg.findGauge("energy.total_j")->value(),
                     r.energy.total());
    ASSERT_NE(reg.findGauge("run.throughput"), nullptr);
    EXPECT_DOUBLE_EQ(reg.findGauge("run.throughput")->value(),
                     r.throughput);

    // The registry's tallies equal the RunResult's (same source).
    EXPECT_EQ(reg.findCounter("engine.flash_reads")->value(),
              r.tally.flashReads);
    EXPECT_EQ(reg.findCounter("run.targets")->value(), r.targets);
}

TEST_F(MetricsGolden, TraceSinkRecordsCommandLifetimes)
{
    platforms::RunConfig rc = run;
    sim::TraceSink sink;
    rc.traceSink = &sink;
    platforms::RunResult r = platforms::runPlatform(
        platforms::makePlatform(platforms::PlatformKind::BG2), rc,
        *bundle);
    ASSERT_TRUE(r.ok);
    EXPECT_GT(sink.events(), 0u);
    std::ostringstream os;
    sink.write(os);
    std::string json = os.str();
    // Command spans with nested phases, flash ops, batch spans.
    EXPECT_NE(json.find("\"name\": \"cmd\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"sense\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"xfer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"batch\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"route\""), std::string::npos);
}

TEST_F(MetricsGolden, ReserveExactMirrorsTheBundleBlocks)
{
    // The session FTL must hold exactly the bundle's reserved blocks.
    ssd::Ftl ftl(run.system.flash);
    ASSERT_TRUE(ftl.reserveExact(bundle->layout.blocks));
    for (flash::BlockId b : bundle->layout.blocks)
        EXPECT_TRUE(ftl.isReserved(b));
    // Mirroring twice must fail (already reserved), not double-book.
    EXPECT_FALSE(ftl.reserveExact(bundle->layout.blocks));
}

} // namespace
