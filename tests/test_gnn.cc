/**
 * @file
 * Tests for the GNN substrate: model arithmetic, both sampling
 * disciplines (plain CSR and DirectGraph two-level), subgraph
 * structure, and the functional forward pass.
 */

#include <gtest/gtest.h>

#include <map>

#include "directgraph/builder.h"
#include "gnn/compute.h"
#include "gnn/sampler.h"
#include "graph/generator.h"
#include "ssd/ftl.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::gnn;

ModelConfig
model33()
{
    ModelConfig m;
    m.hops = 3;
    m.fanout = 3;
    m.featureDim = 32;
    m.hiddenDim = 16;
    m.seed = 11;
    return m;
}

TEST(Model, SubgraphArithmetic)
{
    ModelConfig m = model33();
    // 1 + 3 + 9 + 27 = 40 nodes per target (§VII-A).
    EXPECT_EQ(m.subgraphNodes(), 40u);
    EXPECT_EQ(m.nodesThroughHop(0), 1u);
    EXPECT_EQ(m.nodesThroughHop(1), 4u);
    EXPECT_EQ(m.nodesThroughHop(2), 13u);
    EXPECT_EQ(m.nodesThroughHop(3), 40u);
}

TEST(Model, EstimateComputeShapes)
{
    ModelConfig m = model33();
    ComputeWorkload w = estimateCompute(m, 10);
    ASSERT_EQ(w.gemms.size(), 3u);
    EXPECT_EQ(w.gemms[0].m, 130u); // batch x nodesThroughHop(2).
    EXPECT_EQ(w.gemms[0].k, 32u);
    EXPECT_EQ(w.gemms[0].n, 16u);
    EXPECT_EQ(w.gemms[1].m, 40u);
    EXPECT_EQ(w.gemms[1].k, 16u);
    EXPECT_EQ(w.gemms[2].m, 10u);
    EXPECT_GT(w.totalMacs(), 0u);
    EXPECT_GT(w.aggregateElements, 0u);
}

TEST(CsrSampler, ShapeAndMembership)
{
    graph::GeneratorParams gp;
    gp.nodes = 2000;
    gp.avgDegree = 20;
    graph::Graph g = graph::generatePowerLaw(gp);
    ModelConfig m = model33();

    std::vector<graph::NodeId> targets = {5, 99, 1500};
    Subgraph sg = csrSample(g, m, 0, targets);
    // Full fanout everywhere (all degrees >= 1).
    EXPECT_EQ(sg.size(), 3u * m.subgraphNodes());
    auto counts = sg.hopCounts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 3u);
    EXPECT_EQ(counts[3], 3u * 27u);
    // Every child is a real neighbour of its parent.
    for (Slot s = 0; s < sg.size(); ++s) {
        const auto &e = sg[s];
        if (e.parent == kNoParent)
            continue;
        graph::NodeId parent = sg[e.parent].node;
        bool found = false;
        for (graph::NodeId n : g.neighbors(parent))
            if (n == e.node) {
                found = true;
                break;
            }
        EXPECT_TRUE(found) << "slot " << s;
        EXPECT_EQ(e.hop, sg[e.parent].hop + 1);
    }
}

TEST(CsrSampler, DeterministicAcrossCallsAndBatchSensitive)
{
    graph::Graph g = graph::generateRing(100, 10);
    ModelConfig m = model33();
    std::vector<graph::NodeId> targets = {0, 50};
    Subgraph a = csrSample(g, m, 7, targets);
    Subgraph b = csrSample(g, m, 7, targets);
    ASSERT_EQ(a.size(), b.size());
    for (Slot s = 0; s < a.size(); ++s)
        EXPECT_EQ(a[s].node, b[s].node);
    Subgraph c = csrSample(g, m, 8, targets);
    bool differs = false;
    for (Slot s = 0; s < a.size() && !differs; ++s)
        differs = a[s].node != c[s].node;
    EXPECT_TRUE(differs);
}

TEST(CsrSampler, ZeroDegreeNodesTruncate)
{
    std::vector<std::vector<graph::NodeId>> adj = {{1}, {}};
    graph::Graph g(adj);
    ModelConfig m = model33();
    std::vector<graph::NodeId> targets = {0};
    Subgraph sg = csrSample(g, m, 0, targets);
    // Target -> 3x node 1 (degree 0) -> nothing below.
    EXPECT_EQ(sg.size(), 4u);
}

TEST(DrawPrimary, PartitionsAcrossRegions)
{
    std::vector<dg::SecondaryRef> secs = {{dg::DgAddress(1, 0), 100},
                                          {dg::DgAddress(2, 0), 100}};
    // degree 250 = 50 in page + 100 + 100.
    PrimaryDraws d = drawPrimary(1, 0, 0, 42, 200, 250, 50, secs);
    std::uint32_t total = static_cast<std::uint32_t>(d.inPagePicks.size());
    for (auto h : d.secondaryHits)
        total += h;
    EXPECT_EQ(total, 200u);
    for (auto p : d.inPagePicks)
        EXPECT_LT(p, 50u);
    // With 200 draws over 250 slots, both secondaries are hit w.h.p.
    EXPECT_GT(d.secondaryHits[0], 0u);
    EXPECT_GT(d.secondaryHits[1], 0u);
}

TEST(DrawSecondary, BoundsAndDeterminism)
{
    auto a = drawSecondary(1, 0, 2, 42, 1, 0, 5, 64);
    auto b = drawSecondary(1, 0, 2, 42, 1, 0, 5, 64);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 5u);
    for (auto p : a)
        EXPECT_LT(p, 64u);
    auto c = drawSecondary(1, 0, 2, 42, 2, 0, 5, 64);
    EXPECT_NE(a, c);
    // Splitting the draws (coalescing ablation) keeps the picks.
    auto first = drawSecondary(1, 0, 2, 42, 1, 0, 2, 64);
    auto rest = drawSecondary(1, 0, 2, 42, 1, 2, 3, 64);
    first.insert(first.end(), rest.begin(), rest.end());
    EXPECT_EQ(first, a);
}

TEST(LayoutSampler, MatchesCsrWhenNoSpill)
{
    // Low-degree graph: everything fits in primary sections, so the
    // two disciplines are identical by construction.
    flash::FlashConfig cfg;
    cfg.channels = 2;
    cfg.diesPerChannel = 2;
    cfg.blocksPerPlane = 64;
    cfg.pagesPerBlock = 32;
    graph::Graph g = graph::generateRing(300, 12);
    graph::FeatureTable feat(16, 2);
    ssd::Ftl ftl(cfg);
    auto blocks = ftl.reserveBlocks(32);
    auto layout = dg::buildLayout(g, feat, cfg, blocks);
    for (const auto &nl : layout.nodes)
        ASSERT_TRUE(nl.secondaries.empty());

    ModelConfig m = model33();
    std::vector<graph::NodeId> targets = {3, 77, 200};
    Subgraph a = csrSample(g, m, 5, targets);
    Subgraph b = layoutSample(g, layout, m, 5, targets);
    ASSERT_EQ(a.size(), b.size());
    for (Slot s = 0; s < a.size(); ++s) {
        EXPECT_EQ(a[s].node, b[s].node);
        EXPECT_EQ(a[s].hop, b[s].hop);
        EXPECT_EQ(a[s].parent, b[s].parent);
    }
}

TEST(LayoutSampler, SpilledNodesStillSampleOwnNeighbors)
{
    flash::FlashConfig cfg;
    cfg.channels = 2;
    cfg.diesPerChannel = 2;
    cfg.blocksPerPlane = 128;
    cfg.pagesPerBlock = 32;
    // Hub node 0 with a huge neighbour list.
    std::vector<std::vector<graph::NodeId>> adj(64);
    for (graph::NodeId i = 0; i < 5000; ++i)
        adj[0].push_back(1 + (i % 63));
    for (graph::NodeId v = 1; v < 64; ++v)
        adj[v] = {0, static_cast<graph::NodeId>(v % 63 + 1)};
    graph::Graph g(adj);
    graph::FeatureTable feat(16, 2);
    ssd::Ftl ftl(cfg);
    auto layout = dg::buildLayout(g, feat, cfg, ftl.reserveBlocks(64));
    ASSERT_GT(layout.nodes[0].secondaries.size(), 0u);

    ModelConfig m = model33();
    m.fanout = 8; // More draws to hit the secondaries.
    std::vector<graph::NodeId> targets = {0};
    Subgraph sg = layoutSample(g, layout, m, 1, targets);
    for (Slot s = 0; s < sg.size(); ++s) {
        const auto &e = sg[s];
        if (e.parent == kNoParent)
            continue;
        graph::NodeId parent = sg[e.parent].node;
        bool found = false;
        for (graph::NodeId n : g.neighbors(parent))
            if (n == e.node)
                found = true;
        EXPECT_TRUE(found);
    }
    // Hop-1 children of node 0 exist with full fanout.
    auto counts = sg.hopCounts();
    EXPECT_EQ(counts[1], 8u);
}

TEST(Subgraph, ChildrenIndexAndHopCounts)
{
    Subgraph sg;
    Slot r = sg.add(10, 0, kNoParent);
    Slot a = sg.add(11, 1, r);
    Slot b = sg.add(12, 1, r);
    sg.add(13, 2, a);
    auto idx = sg.childrenIndex();
    ASSERT_EQ(idx[r].size(), 2u);
    EXPECT_EQ(idx[r][0], a);
    EXPECT_EQ(idx[r][1], b);
    EXPECT_EQ(idx[a].size(), 1u);
    auto counts = sg.hopCounts();
    EXPECT_EQ(counts, (std::vector<std::uint32_t>{1, 2, 1}));
}

TEST(Compute, ForwardDeterministicAndShaped)
{
    graph::Graph g = graph::generateRing(100, 8);
    graph::FeatureTable feat(32, 3);
    ModelConfig m = model33();
    std::vector<graph::NodeId> targets = {1, 2, 3};
    Subgraph sg = csrSample(g, m, 0, targets);

    auto out1 = forward(sg, feat, m);
    auto out2 = forward(sg, feat, m);
    ASSERT_EQ(out1.size(), 3u);
    ASSERT_EQ(out1[0].size(), m.hiddenDim);
    for (std::size_t t = 0; t < out1.size(); ++t)
        for (std::size_t i = 0; i < out1[t].size(); ++i)
            EXPECT_EQ(out1[t][i], out2[t][i]);
    // ReLU output is nonnegative, and not all zero.
    float sum = 0;
    for (const auto &v : out1)
        for (float x : v) {
            EXPECT_GE(x, 0.0f);
            sum += x;
        }
    EXPECT_GT(sum, 0.0f);
}

TEST(Compute, EmbeddingDependsOnSubgraph)
{
    graph::Graph g = graph::generateRing(100, 8);
    graph::FeatureTable feat(32, 3);
    ModelConfig m = model33();
    std::vector<graph::NodeId> t1 = {1};
    std::vector<graph::NodeId> t2 = {2};
    auto o1 = forward(csrSample(g, m, 0, t1), feat, m);
    auto o2 = forward(csrSample(g, m, 0, t2), feat, m);
    bool differs = false;
    for (std::size_t i = 0; i < o1[0].size(); ++i)
        differs |= o1[0][i] != o2[0][i];
    EXPECT_TRUE(differs);
}

TEST(Compute, MeanAggregationDiffersFromSum)
{
    graph::Graph g = graph::generateRing(50, 6);
    graph::FeatureTable feat(16, 3);
    ModelConfig m = model33();
    std::vector<graph::NodeId> targets = {7};
    Subgraph sg = csrSample(g, m, 0, targets);
    auto sum_out = forward(sg, feat, m);
    m.aggregation = Aggregation::Mean;
    auto mean_out = forward(sg, feat, m);
    bool differs = false;
    for (std::size_t i = 0; i < sum_out[0].size(); ++i)
        differs |= sum_out[0][i] != mean_out[0][i];
    EXPECT_TRUE(differs);
}

TEST(Compute, MeasureMatchesEstimateOnFullSubgraphs)
{
    graph::Graph g = graph::generateRing(500, 10);
    ModelConfig m = model33();
    std::vector<graph::NodeId> targets(8);
    for (std::size_t i = 0; i < targets.size(); ++i)
        targets[i] = static_cast<graph::NodeId>(i * 20);
    Subgraph sg = csrSample(g, m, 0, targets);
    ComputeWorkload measured = measureCompute(sg, m);
    ComputeWorkload estimated = estimateCompute(m, 8);
    ASSERT_EQ(measured.gemms.size(), estimated.gemms.size());
    for (std::size_t l = 0; l < measured.gemms.size(); ++l) {
        EXPECT_EQ(measured.gemms[l].m, estimated.gemms[l].m);
        EXPECT_EQ(measured.gemms[l].k, estimated.gemms[l].k);
    }
    EXPECT_EQ(measured.aggregateElements, estimated.aggregateElements);
}

} // namespace
