/**
 * @file
 * Tests for the SSD frontend: FTL mapping and reserved blocks, ECC +
 * scrubbing repair, DirectGraph flush verification, and wear-
 * levelling reclamation (§VI-A/E/F).
 */

#include <gtest/gtest.h>

#include "directgraph/source.h"
#include "graph/generator.h"
#include "ssd/ecc.h"
#include "ssd/firmware.h"
#include "ssd/ftl.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::ssd;

SystemConfig
smallSystem()
{
    SystemConfig cfg;
    cfg.flash.channels = 4;
    cfg.flash.diesPerChannel = 2;
    cfg.flash.planesPerDie = 2;
    cfg.flash.blocksPerPlane = 32;
    cfg.flash.pagesPerBlock = 16;
    cfg.flash.pageSize = 4096;
    return cfg;
}

TEST(Ftl, TranslateAllocatesOnWrite)
{
    Ftl ftl(smallSystem().flash);
    EXPECT_FALSE(ftl.translate(100, false).has_value());
    auto w = ftl.translate(100, true);
    ASSERT_TRUE(w.has_value());
    // Reads hit the same mapping afterwards.
    auto r = ftl.translate(100, false);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, *w);
    EXPECT_TRUE(ftl.isMapped(100));
    // Distinct LPAs map to distinct PPAs.
    auto w2 = ftl.translate(101, true);
    ASSERT_TRUE(w2.has_value());
    EXPECT_NE(*w, *w2);
}

TEST(Ftl, ReservedBlocksAreIsolated)
{
    Ftl ftl(smallSystem().flash);
    auto blocks = ftl.reserveBlocks(4);
    ASSERT_EQ(blocks.size(), 4u);
    for (auto b : blocks)
        EXPECT_TRUE(ftl.isReserved(b));
    EXPECT_EQ(ftl.reservedCount(), 4u);

    // Regular writes never land in reserved blocks.
    for (Lpa l = 0; l < 200; ++l) {
        auto p = ftl.translate(l, true);
        ASSERT_TRUE(p.has_value());
        EXPECT_FALSE(ftl.ppaReserved(*p));
    }
    // Release returns them to the pool.
    ftl.releaseBlocks(blocks);
    EXPECT_EQ(ftl.reservedCount(), 0u);
}

TEST(Ftl, ReserveFailsWhenFull)
{
    Ftl ftl(smallSystem().flash);
    auto all = ftl.reserveBlocks(ftl.totalBlocks());
    EXPECT_EQ(all.size(), ftl.totalBlocks());
    EXPECT_TRUE(ftl.reserveBlocks(1).empty());
}

TEST(Ftl, PeGapTracksWear)
{
    auto cfg = smallSystem();
    Ftl ftl(cfg.flash);
    flash::PageStore store(cfg.flash);
    auto blocks = ftl.reserveBlocks(2);
    // Wear out some regular blocks.
    std::vector<std::uint8_t> data(cfg.flash.pageSize, 1);
    for (int round = 0; round < 10; ++round) {
        for (Lpa l = 0; l < 32; ++l) {
            auto p = ftl.translate(l + round * 1000, true);
            ASSERT_TRUE(p.has_value());
            store.program(*p, data);
        }
    }
    // Erase regular blocks a few times to accumulate P/E.
    for (flash::BlockId b = 0; b < ftl.totalBlocks(); ++b)
        if (!ftl.isReserved(b) && store.peCycles(b) == 0) {
            for (int i = 0; i < 8; ++i)
                store.eraseBlock(b);
            break;
        }
    EXPECT_GT(ftl.peGap(store), 0.0);
    EXPECT_TRUE(ftl.needsReclaim(store, 0.001));
    EXPECT_FALSE(ftl.needsReclaim(store, 1e9));
}

TEST(Ecc, Crc32DetectsChanges)
{
    std::vector<std::uint8_t> a(128, 7), b(128, 7);
    EXPECT_EQ(crc32c(a), crc32c(b));
    b[64] ^= 1;
    EXPECT_NE(crc32c(a), crc32c(b));
    EXPECT_EQ(crc32c({}), 0u);
}

TEST(Ecc, CheckAfterProgram)
{
    auto cfg = smallSystem();
    flash::PageStore store(cfg.flash);
    EccModel ecc;
    std::vector<std::uint8_t> data(cfg.flash.pageSize, 0x5A);
    store.program(7, data);
    ecc.onProgram(7, data);
    EXPECT_TRUE(ecc.check(7, store.read(7)));
    store.corruptBit(7, 1000, 2);
    EXPECT_FALSE(ecc.check(7, store.read(7)));
    // Unrecorded pages pass (no ECC on erased pages).
    EXPECT_TRUE(ecc.check(999, data));
}

TEST(Scrub, RepairsCorruptedBlock)
{
    auto cfg = smallSystem();
    flash::PageStore store(cfg.flash);
    EccModel ecc;
    // Program 4 pages of block 0 with a regenerable pattern.
    auto pattern = [&](flash::Ppa ppa, std::span<std::uint8_t> out) {
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = static_cast<std::uint8_t>(ppa + i);
    };
    std::vector<std::uint8_t> buf(cfg.flash.pageSize);
    for (flash::Ppa p = 0; p < 4; ++p) {
        pattern(p, buf);
        store.program(p, buf);
        ecc.onProgram(p, buf);
    }
    store.corruptBit(2, 55, 1);

    std::vector<flash::BlockId> blocks = {0};
    ScrubReport rep = scrubBlocks(store, ecc, blocks,
                                  cfg.flash.pagesPerBlock, pattern);
    EXPECT_EQ(rep.pagesChecked, 4u);
    EXPECT_EQ(rep.errorsFound, 1u);
    EXPECT_EQ(rep.blocksReprogrammed, 1u);
    // Content repaired.
    pattern(2, buf);
    auto back = store.read(2);
    ASSERT_FALSE(back.empty());
    for (std::size_t i = 0; i < buf.size(); ++i)
        ASSERT_EQ(back[i], buf[i]);
    // A clean pass finds nothing.
    ScrubReport clean = scrubBlocks(store, ecc, blocks,
                                    cfg.flash.pagesPerBlock, pattern);
    EXPECT_EQ(clean.errorsFound, 0u);
    EXPECT_EQ(clean.blocksReprogrammed, 0u);
}

class FirmwareTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg = smallSystem();
        fw = std::make_unique<Firmware>(cfg);
        backend = std::make_unique<flash::FlashBackend>(cfg.flash);
        store = std::make_unique<flash::PageStore>(cfg.flash);
        g = graph::generatePowerLaw({.nodes = 300,
                                     .avgDegree = 24,
                                     .exponent = 2.1,
                                     .minDegree = 2,
                                     .maxDegree = 800,
                                     .seed = 3});
        feat = std::make_unique<graph::FeatureTable>(24, 5);
        auto blocks = fw->ftl().reserveBlocks(64);
        ASSERT_FALSE(blocks.empty());
        layout = dg::buildLayout(g, *feat, cfg.flash, blocks);
    }

    SystemConfig cfg;
    std::unique_ptr<Firmware> fw;
    std::unique_ptr<flash::FlashBackend> backend;
    std::unique_ptr<flash::PageStore> store;
    graph::Graph g;
    std::unique_ptr<graph::FeatureTable> feat;
    dg::DirectGraphLayout layout;
};

TEST_F(FirmwareTest, FlushWritesAndVerifies)
{
    FlushResult res =
        fw->flushDirectGraph(0, layout, g, *feat, *store, *backend);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.pagesWritten, layout.pages.size());
    EXPECT_EQ(res.pagesRejected, 0u);
    EXPECT_GT(res.finish, 0u);
    EXPECT_EQ(store->programmedPages(), layout.pages.size());

    // All flushed pages pass ECC.
    for (const auto &[ppa, dir] : layout.pages)
        EXPECT_TRUE(fw->ecc().check(ppa, store->read(ppa)));
}

TEST_F(FirmwareTest, FlushRejectsUnreservedDestination)
{
    // A layout whose blocks were never reserved in this firmware's
    // FTL is refused (isolation, §VI-E).
    Firmware other(cfg);
    FlushResult res =
        other.flushDirectGraph(0, layout, g, *feat, *store, *backend);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.pagesWritten, 0u);
    EXPECT_EQ(res.pagesRejected, layout.pages.size());
}

TEST_F(FirmwareTest, ScrubAfterCorruption)
{
    fw->flushDirectGraph(0, layout, g, *feat, *store, *backend);
    flash::Ppa victim = layout.nodes[0].primary.page();
    ASSERT_TRUE(store->corruptBit(victim, 40, 0));
    ScrubReport rep = fw->scrub(layout, g, *feat, *store);
    EXPECT_EQ(rep.errorsFound, 1u);
    EXPECT_EQ(rep.blocksReprogrammed, 1u);
    // The repaired page is byte-identical to the golden encoding.
    std::vector<std::uint8_t> golden(cfg.flash.pageSize);
    dg::encodePageImage(layout, g, *feat, victim, golden);
    auto back = store->read(victim);
    for (std::size_t i = 0; i < golden.size(); ++i)
        ASSERT_EQ(back[i], golden[i]);
}

TEST_F(FirmwareTest, ReclaimMigratesAndRewritesAddresses)
{
    fw->flushDirectGraph(0, layout, g, *feat, *store, *backend);
    auto old_blocks = layout.blocks;
    ReclaimResult r =
        fw->reclaimDirectGraph(1000, layout, g, *feat, *store, *backend);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.blocksMigrated, old_blocks.size());
    // New layout lives in different blocks.
    for (auto nb : r.layout.blocks)
        for (auto ob : old_blocks)
            EXPECT_NE(nb, ob);
    // Old blocks are no longer reserved; new ones are.
    for (auto ob : old_blocks)
        EXPECT_FALSE(fw->ftl().isReserved(ob));
    for (auto nb : r.layout.blocks)
        EXPECT_TRUE(fw->ftl().isReserved(nb));
    // The migrated copy decodes correctly: spot-check node sections
    // through the byte source.
    dg::PageByteSource src(*store, feat->dim());
    for (graph::NodeId v = 0; v < g.numNodes(); v += 37) {
        auto sec = src.fetch(r.layout.nodes[v].primary);
        ASSERT_TRUE(sec.has_value());
        EXPECT_EQ(sec->node, v);
        EXPECT_EQ(sec->totalNeighbors, g.degree(v));
    }
}

TEST_F(FirmwareTest, CoreServiceTimesQueue)
{
    // 4 cores split into 2 issue + 2 completion threads (Fig. 3):
    // a third simultaneous issue queues behind the first.
    auto g1 = fw->coreIssue(0);
    fw->coreIssue(0);
    auto g3 = fw->coreIssue(0);
    EXPECT_EQ(g1.start, 0u);
    EXPECT_EQ(g3.start, g1.end);
    // Completions use their own pool and do not queue behind issues.
    auto c1 = fw->coreComplete(0);
    EXPECT_EQ(c1.start, 0u);
    EXPECT_GT(fw->coreBusyTime(), 0u);
    fw->resetStats();
    EXPECT_EQ(fw->coreBusyTime(), 0u);
}

} // namespace
