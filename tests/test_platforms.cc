/**
 * @file
 * Platform-level tests: preset wiring, runner statistics, and the
 * paper's headline ordering invariants (Fig. 14's BG-X ladder, the
 * prior-work baselines, pipelining, utilization traces).
 *
 * These use a reduced workload so the whole suite stays fast; the
 * bench binaries run the full configurations.
 */

#include <gtest/gtest.h>

#include "platforms/runner.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::platforms;

class PlatformRig : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        gnn::ModelConfig model;
        ssd::SystemConfig sys;
        auto spec = graph::workload("amazon");
        spec.simNodes = 6000;
        bundle = makeBundle(spec, sys.flash, model).release();
    }

    static void
    TearDownTestSuite()
    {
        delete bundle;
        bundle = nullptr;
    }

    RunConfig
    runCfg() const
    {
        RunConfig rc;
        rc.batchSize = 32;
        rc.batches = 2;
        return rc;
    }

    static WorkloadBundle *bundle;
};

WorkloadBundle *PlatformRig::bundle = nullptr;

TEST(PlatformPresets, FeatureMatrix)
{
    using engines::SamplingLoc;
    auto cc = makePlatform(PlatformKind::CC);
    EXPECT_EQ(cc.flags.sampling, SamplingLoc::Host);
    EXPECT_FALSE(cc.flags.directGraph);
    EXPECT_FALSE(cc.ssdCompute);
    EXPECT_TRUE(cc.flags.featuresViaHost);

    auto glist = makePlatform(PlatformKind::GLIST);
    EXPECT_EQ(glist.flags.sampling, SamplingLoc::Host);
    EXPECT_TRUE(glist.ssdCompute);
    EXPECT_FALSE(glist.flags.featuresViaHost);

    auto smart = makePlatform(PlatformKind::SmartSage);
    EXPECT_EQ(smart.flags.sampling, SamplingLoc::Firmware);
    EXPECT_TRUE(smart.flags.featuresViaHost);
    EXPECT_TRUE(smart.flags.idsToHost);

    auto bg1 = makePlatform(PlatformKind::BG1);
    EXPECT_EQ(bg1.flags.sampling, SamplingLoc::Firmware);
    EXPECT_FALSE(bg1.flags.directGraph);
    EXPECT_TRUE(bg1.ssdCompute);

    auto dg = makePlatform(PlatformKind::BG_DG);
    EXPECT_TRUE(dg.flags.directGraph);
    EXPECT_FALSE(dg.flags.hwRouter);

    auto sp = makePlatform(PlatformKind::BG_SP);
    EXPECT_EQ(sp.flags.sampling, SamplingLoc::Die);
    EXPECT_FALSE(sp.flags.directGraph);

    auto dgsp = makePlatform(PlatformKind::BG_DGSP);
    EXPECT_EQ(dgsp.flags.sampling, SamplingLoc::Die);
    EXPECT_TRUE(dgsp.flags.directGraph);
    EXPECT_FALSE(dgsp.flags.hwRouter);

    auto bg2 = makePlatform(PlatformKind::BG2);
    EXPECT_TRUE(bg2.flags.hwRouter);
    EXPECT_TRUE(bg2.flags.directGraph);
    EXPECT_EQ(allPlatforms().size(), 8u);
    EXPECT_EQ(bgLadder().size(), 5u);
    EXPECT_EQ(platformName(PlatformKind::BG_DGSP), "BG-DGSP");
}

TEST_F(PlatformRig, RunProducesConsistentStats)
{
    RunResult r = runPlatform(makePlatform(PlatformKind::BG2), runCfg(),
                              *bundle);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.targets, 64u);
    EXPECT_GT(r.totalTime, 0u);
    EXPECT_GT(r.throughput, 0.0);
    EXPECT_GE(r.totalTime, r.prepTime);
    EXPECT_EQ(r.cmdStats.lifetime.count(), r.tally.flashReads);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_GT(r.avgPowerW, 0.0);
    // Subgraph of the last batch has full fanout shape.
    EXPECT_EQ(r.lastSubgraph.size(),
              32u * bundle->model.subgraphNodes());
    ASSERT_EQ(r.hops.size(), 4u);
    for (const auto &h : r.hops)
        EXPECT_LT(h.first, h.last);
}

TEST_F(PlatformRig, Deterministic)
{
    RunResult a = runPlatform(makePlatform(PlatformKind::BG_DGSP),
                              runCfg(), *bundle);
    RunResult b = runPlatform(makePlatform(PlatformKind::BG_DGSP),
                              runCfg(), *bundle);
    EXPECT_EQ(a.totalTime, b.totalTime);
    EXPECT_EQ(a.tally.flashReads, b.tally.flashReads);
    EXPECT_EQ(a.tally.channelBytes, b.tally.channelBytes);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST_F(PlatformRig, Fig14LadderOrdering)
{
    // The paper's headline result: each BG-X extension improves
    // throughput, and every ISC design beats the CPU-centric
    // baseline (Fig. 14).
    RunConfig rc = runCfg();
    double cc = runPlatform(makePlatform(PlatformKind::CC), rc, *bundle)
                    .throughput;
    double bg1 =
        runPlatform(makePlatform(PlatformKind::BG1), rc, *bundle)
            .throughput;
    double dg =
        runPlatform(makePlatform(PlatformKind::BG_DG), rc, *bundle)
            .throughput;
    double sp =
        runPlatform(makePlatform(PlatformKind::BG_SP), rc, *bundle)
            .throughput;
    double dgsp =
        runPlatform(makePlatform(PlatformKind::BG_DGSP), rc, *bundle)
            .throughput;
    double bg2 =
        runPlatform(makePlatform(PlatformKind::BG2), rc, *bundle)
            .throughput;

    EXPECT_GT(bg1, cc);
    EXPECT_GT(dg, bg1);
    EXPECT_GT(sp, bg1);
    EXPECT_GT(dgsp, sp);
    EXPECT_GT(dgsp, dg);
    EXPECT_GT(bg2, dgsp);
    // The full-system win is at least several-fold.
    EXPECT_GT(bg2 / cc, 4.0);
}

TEST_F(PlatformRig, PriorWorkBeatsBaseline)
{
    RunConfig rc = runCfg();
    double cc = runPlatform(makePlatform(PlatformKind::CC), rc, *bundle)
                    .throughput;
    double smart =
        runPlatform(makePlatform(PlatformKind::SmartSage), rc, *bundle)
            .throughput;
    double glist =
        runPlatform(makePlatform(PlatformKind::GLIST), rc, *bundle)
            .throughput;
    EXPECT_GT(smart, cc);
    EXPECT_GT(glist, cc);
    // §VII-B: sampling offload helps more than feature offload.
    EXPECT_GT(smart, glist);
}

TEST_F(PlatformRig, PcieTrafficShape)
{
    RunConfig rc = runCfg();
    auto cc = runPlatform(makePlatform(PlatformKind::CC), rc, *bundle);
    auto bg2 = runPlatform(makePlatform(PlatformKind::BG2), rc, *bundle);
    // The CC baseline moves orders of magnitude more bytes over PCIe.
    EXPECT_GT(cc.tally.pcieBytes, 100u * std::max<std::uint64_t>(
                                             1, bg2.tally.pcieBytes));
    // And BG platforms keep all page traffic inside the SSD.
    EXPECT_EQ(bg2.tally.pcieBytes, 0u);
}

TEST_F(PlatformRig, DieSamplerCutsChannelTraffic)
{
    RunConfig rc = runCfg();
    auto bg1 = runPlatform(makePlatform(PlatformKind::BG1), rc, *bundle);
    auto sp = runPlatform(makePlatform(PlatformKind::BG_SP), rc, *bundle);
    // Challenge 2: page-granular transfer wastes channel bandwidth;
    // die-level sampling transfers only result frames.
    EXPECT_GT(bg1.tally.channelBytes, 5 * sp.tally.channelBytes);
}

TEST_F(PlatformRig, EnergyBreakdownShape)
{
    RunConfig rc = runCfg();
    auto cc = runPlatform(makePlatform(PlatformKind::CC), rc, *bundle);
    auto bg2 = runPlatform(makePlatform(PlatformKind::BG2), rc, *bundle);
    // Fig. 19: CC spends a large share of energy moving data off
    // storage; BG-2 spends none there.
    EXPECT_GT(cc.energy.offStorageShare(), 0.3);
    EXPECT_LT(bg2.energy.offStorageShare(), 0.05);
    // Energy per target improves on BG-2.
    double cc_per = cc.energy.total() / static_cast<double>(cc.targets);
    double bg2_per =
        bg2.energy.total() / static_cast<double>(bg2.targets);
    EXPECT_GT(cc_per, 2.0 * bg2_per);
}

TEST_F(PlatformRig, UtilizationTraces)
{
    RunConfig rc = runCfg();
    rc.traceUtilization = true;
    rc.utilizationBuckets = 24;
    auto r = runPlatform(makePlatform(PlatformKind::BG2), rc, *bundle);
    ASSERT_EQ(r.dieSeries.size(), 24u);
    ASSERT_EQ(r.channelSeries.size(), 24u);
    double max_active = 0;
    for (double v : r.dieSeries) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 128.0);
        max_active = std::max(max_active, v);
    }
    EXPECT_GT(max_active, 0.0);
}

TEST_F(PlatformRig, TraditionalSsdNarrowsBg2Gap)
{
    // §VII-E: with 20 us flash, BG-DGSP ~= BG-2 (firmware suffices).
    RunConfig rc = runCfg();
    rc.system.flash = rc.system.flash.asTraditional();
    auto dgsp =
        runPlatform(makePlatform(PlatformKind::BG_DGSP), rc, *bundle);
    auto bg2 = runPlatform(makePlatform(PlatformKind::BG2), rc, *bundle);
    double gap = bg2.throughput / dgsp.throughput;
    EXPECT_LT(gap, 1.25);
    EXPECT_GE(gap, 0.95);
}

TEST_F(PlatformRig, BatchSizeScalesBg2)
{
    // Fig. 18a: BG-2 keeps scaling with batch size.
    RunConfig small = runCfg();
    small.batchSize = 16;
    RunConfig big = runCfg();
    big.batchSize = 128;
    auto a = runPlatform(makePlatform(PlatformKind::BG2), small, *bundle);
    auto b = runPlatform(makePlatform(PlatformKind::BG2), big, *bundle);
    EXPECT_GT(b.throughput, a.throughput);
}

TEST_F(PlatformRig, MoreCoresHelpFirmwareBoundNotBg2)
{
    // Fig. 18c: BG-DGSP benefits from more cores; BG-2 does not care.
    RunConfig one = runCfg();
    one.system.controller.cores = 1;
    RunConfig eight = runCfg();
    eight.system.controller.cores = 8;
    auto dgsp1 =
        runPlatform(makePlatform(PlatformKind::BG_DGSP), one, *bundle);
    auto dgsp8 =
        runPlatform(makePlatform(PlatformKind::BG_DGSP), eight, *bundle);
    EXPECT_GT(dgsp8.throughput, 1.2 * dgsp1.throughput);
    auto bg2_1 = runPlatform(makePlatform(PlatformKind::BG2), one, *bundle);
    auto bg2_8 =
        runPlatform(makePlatform(PlatformKind::BG2), eight, *bundle);
    EXPECT_NEAR(bg2_8.throughput / bg2_1.throughput, 1.0, 0.05);
}

} // namespace

#include <sstream>

#include "platforms/report.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::platforms;

TEST(Report, CsvRowRoundTrips)
{
    gnn::ModelConfig model;
    ssd::SystemConfig sys;
    auto spec = graph::workload("OGBN");
    spec.simNodes = 2000;
    auto bundle = makeBundle(spec, sys.flash, model);
    RunConfig rc;
    rc.batchSize = 16;
    rc.batches = 1;
    rc.traceUtilization = true;
    rc.utilizationBuckets = 8;
    auto r = runPlatform(makePlatform(PlatformKind::BG2), rc, *bundle);

    std::ostringstream header, row, series;
    writeCsvHeader(header);
    writeCsvRow(row, r);
    writeSeriesCsv(series, r);

    // Same number of columns in header and row.
    auto count = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(count(header.str()), count(row.str()));
    // The row carries the platform/workload and the throughput.
    EXPECT_NE(row.str().find("BG-2,OGBN,1,16,"), std::string::npos);
    // Two series rows (dies + channels), 8 samples each.
    std::string series_str = series.str();
    EXPECT_EQ(std::count(series_str.begin(), series_str.end(), '\n'),
              2);
    EXPECT_EQ(count(series_str), 2 * (1 + 8));
    // Human summary mentions the essentials.
    std::string sum = summaryLine(r);
    EXPECT_NE(sum.find("BG-2"), std::string::npos);
    EXPECT_NE(sum.find("targets/s"), std::string::npos);
}

TEST(Report, ConfigBroadcastPrecedesFirstBatch)
{
    gnn::ModelConfig model;
    ssd::SystemConfig sys;
    auto spec = graph::workload("OGBN");
    spec.simNodes = 1500;
    auto bundle = makeBundle(spec, sys.flash, model);

    sim::EventQueue q;
    flash::FlashBackend backend(sys.flash);
    ssd::Firmware fw(sys);
    auto p = makePlatform(PlatformKind::BG2);
    engines::GnnEngine engine(q, backend, fw, bundle->layout,
                              bundle->graph, bundle->model, p.flags,
                              *bundle->source);
    EXPECT_EQ(engine.configuredAt(), 0u);

    std::vector<graph::NodeId> targets = {1, 2};
    engines::PrepResult pr;
    engine.prepare(0, 0, targets,
                   [&](engines::PrepResult &&r) { pr = std::move(r); });
    q.run();
    // §VI-C: the global GNN configuration broadcast completes before
    // any sampling command is created.
    EXPECT_GT(engine.configuredAt(), 0u);
    EXPECT_GE(pr.hops[0].first, engine.configuredAt());

    // A second batch reuses the configuration (no re-broadcast).
    sim::Tick configured = engine.configuredAt();
    engines::PrepResult pr2;
    engine.prepare(pr.finish, 1, targets,
                   [&](engines::PrepResult &&r) { pr2 = std::move(r); });
    q.run();
    EXPECT_EQ(engine.configuredAt(), configured);
}

} // namespace
