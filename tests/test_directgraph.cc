/**
 * @file
 * DirectGraph tests: address packing, section codec round trips, the
 * Algorithm-1 builder's invariants, byte/layout source equivalence,
 * and the §VI-E security verifier.
 */

#include <gtest/gtest.h>

#include "directgraph/builder.h"
#include "directgraph/source.h"
#include "directgraph/verify.h"
#include "graph/generator.h"
#include "ssd/ftl.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::dg;

flash::FlashConfig
smallFlash()
{
    flash::FlashConfig cfg;
    cfg.channels = 4;
    cfg.diesPerChannel = 2;
    cfg.planesPerDie = 2;
    cfg.blocksPerPlane = 64;
    cfg.pagesPerBlock = 32;
    cfg.pageSize = 4096;
    return cfg;
}

std::vector<flash::BlockId>
reserve(const flash::FlashConfig &cfg, std::uint64_t n)
{
    ssd::Ftl ftl(cfg);
    return ftl.reserveBlocks(n);
}

TEST(DgAddress, PackUnpack)
{
    DgAddress a(0x0ABCDEF, 9);
    EXPECT_EQ(a.page(), 0x0ABCDEFu);
    EXPECT_EQ(a.section(), 9u);
    EXPECT_EQ(a.raw, (0x0ABCDEFu << 4) | 9u);
    DgAddress b(a.raw);
    EXPECT_EQ(a, b);
    // 28-bit page index (1 TB / 4 KB).
    DgAddress top((1u << 28) - 1, 15);
    EXPECT_EQ(top.page(), (1u << 28) - 1);
    EXPECT_EQ(top.section(), 15u);
}

TEST(Codec, SectionSizeFormulas)
{
    EXPECT_EQ(primarySectionBytes(0, 0, 0), kHeaderBytes);
    EXPECT_EQ(primarySectionBytes(2, 100, 5),
              kHeaderBytes + 16 + 100 + 20);
    EXPECT_EQ(secondarySectionBytes(10), kHeaderBytes + 40);
    EXPECT_EQ(alignSection(1), kSectionAlign);
    EXPECT_EQ(alignSection(64), 64u);
    EXPECT_EQ(alignSection(65), 128u);
}

TEST(Codec, PrimaryRoundTrip)
{
    std::vector<std::uint8_t> page(4096, 0);
    std::vector<SecondaryRef> secs = {{DgAddress(100, 1), 50},
                                      {DgAddress(200, 2), 30}};
    std::vector<std::uint8_t> feat(64);
    for (std::size_t i = 0; i < feat.size(); ++i)
        feat[i] = static_cast<std::uint8_t>(i * 3);
    std::vector<DgAddress> in_page = {DgAddress(7, 0), DgAddress(8, 3),
                                      DgAddress(9, 15)};
    std::uint32_t written =
        encodePrimary(page, 424242, 83, secs, feat, in_page);
    EXPECT_EQ(written, primarySectionBytes(2, 64, 3));

    auto dec = decodeSection(page, 0, 32); // 32 FP16 elems = 64 B.
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(dec->type, SectionType::Primary);
    EXPECT_EQ(dec->node, 424242u);
    EXPECT_EQ(dec->totalNeighbors, 83u);
    EXPECT_TRUE(dec->hasFeature);
    ASSERT_EQ(dec->secondaries.size(), 2u);
    EXPECT_EQ(dec->secondaries[0].addr, DgAddress(100, 1));
    EXPECT_EQ(dec->secondaries[0].count, 50u);
    EXPECT_EQ(dec->secondaries[1].count, 30u);
    EXPECT_EQ(dec->inPage, 3u);
    ASSERT_EQ(dec->neighborAddrs.size(), 3u);
    EXPECT_EQ(dec->neighborAddrs[2], DgAddress(9, 15));
}

TEST(Codec, SecondaryRoundTrip)
{
    std::vector<std::uint8_t> page(4096, 0);
    std::vector<DgAddress> nbrs;
    for (std::uint32_t i = 0; i < 20; ++i)
        nbrs.emplace_back(i * 17, i % 16);
    std::uint32_t written = encodeSecondary(page, 777, nbrs);
    EXPECT_EQ(written, secondarySectionBytes(20));
    auto dec = decodeSection(page, 0, 128);
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(dec->type, SectionType::Secondary);
    EXPECT_EQ(dec->node, 777u);
    EXPECT_EQ(dec->totalNeighbors, 20u);
    ASSERT_EQ(dec->neighborAddrs.size(), 20u);
    EXPECT_EQ(dec->neighborAddrs[19], DgAddress(19 * 17, 3));
}

TEST(Codec, MultipleSectionsPerPage)
{
    std::vector<std::uint8_t> page(4096, 0);
    std::vector<DgAddress> n1 = {DgAddress(1, 0)};
    std::vector<DgAddress> n2 = {DgAddress(2, 0), DgAddress(3, 0)};
    encodeSecondary(std::span(page).subspan(0), 10, n1);
    std::uint32_t off = alignSection(secondarySectionBytes(1));
    encodeSecondary(std::span(page).subspan(off), 11, n2);

    auto s0 = findSection(page, 0, 0);
    auto s1 = findSection(page, 1, 0);
    ASSERT_TRUE(s0 && s1);
    EXPECT_EQ(s0->node, 10u);
    EXPECT_EQ(s1->node, 11u);
    EXPECT_EQ(s1->totalNeighbors, 2u);
    EXPECT_FALSE(findSection(page, 2, 0).has_value());
    EXPECT_EQ(decodePage(page, 0).size(), 2u);
}

TEST(Codec, RejectsGarbage)
{
    std::vector<std::uint8_t> page(4096, 0xEE); // Invalid type byte.
    EXPECT_FALSE(decodeSection(page, 0, 10).has_value());
    std::vector<std::uint8_t> erased(4096, 0);
    EXPECT_FALSE(decodeSection(erased, 0, 10).has_value());
    EXPECT_TRUE(decodePage(erased, 10).empty());
}

class BuilderTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BuilderTest, InvariantsHoldForVariousPageSizes)
{
    flash::FlashConfig cfg = smallFlash();
    cfg.pageSize = GetParam();
    graph::GeneratorParams gp;
    gp.nodes = 600;
    gp.avgDegree = 40;
    gp.maxDegree = 3000;
    gp.seed = GetParam();
    graph::Graph g = graph::generatePowerLaw(gp);
    graph::FeatureTable feat(32, 5);

    auto blocks = reserve(cfg, 400);
    ASSERT_FALSE(blocks.empty());
    DirectGraphLayout layout = buildLayout(g, feat, cfg, blocks);
    EXPECT_EQ(checkLayoutInvariants(layout), "");
    EXPECT_EQ(layout.nodes.size(), g.numNodes());
    EXPECT_GT(layout.stats.primaryPages, 0u);
}

INSTANTIATE_TEST_SUITE_P(PageSizes, BuilderTest,
                         ::testing::Values(2048u, 4096u, 8192u, 16384u));

TEST(Builder, HighDegreeNodesSpill)
{
    flash::FlashConfig cfg = smallFlash();
    // Node 0 has degree far exceeding one page.
    std::vector<std::vector<graph::NodeId>> adj(50);
    for (graph::NodeId i = 0; i < 4000; ++i)
        adj[0].push_back(1 + (i % 49));
    for (graph::NodeId v = 1; v < 50; ++v)
        adj[v] = {0, static_cast<graph::NodeId>((v + 1) % 50)};
    graph::Graph g(adj);
    graph::FeatureTable feat(64, 1);
    auto blocks = reserve(cfg, 64);
    DirectGraphLayout layout = buildLayout(g, feat, cfg, blocks);
    EXPECT_EQ(checkLayoutInvariants(layout), "");
    const NodeLayout &nl = layout.nodes[0];
    EXPECT_GT(nl.secondaries.size(), 0u);
    std::uint32_t covered = nl.inPage;
    for (const auto &s : nl.secondaries)
        covered += s.count;
    EXPECT_EQ(covered, 4000u);
    EXPECT_GT(layout.stats.secondaryPages, 0u);
    EXPECT_EQ(layout.stats.nodesWithSecondaries, 1u);
}

TEST(Builder, CompactionPacksSmallSections)
{
    flash::FlashConfig cfg = smallFlash();
    // 64 low-degree nodes: sections must share pages.
    graph::Graph g = graph::generateRing(64, 4);
    graph::FeatureTable feat(16, 2);
    auto blocks = reserve(cfg, 16);
    DirectGraphLayout layout = buildLayout(g, feat, cfg, blocks);
    EXPECT_EQ(checkLayoutInvariants(layout), "");
    // Way fewer pages than nodes.
    EXPECT_LT(layout.stats.primaryPages, 16u);
    // And no page exceeds the 4-bit section cap.
    for (const auto &[ppa, dir] : layout.pages)
        EXPECT_LE(dir.sections.size(), kMaxSectionsPerPage);
}

TEST(Builder, MaterializeAndSourcesAgree)
{
    flash::FlashConfig cfg = smallFlash();
    graph::GeneratorParams gp;
    gp.nodes = 400;
    gp.avgDegree = 60;
    gp.maxDegree = 2500;
    graph::Graph g = graph::generatePowerLaw(gp);
    graph::FeatureTable feat(32, 5);
    auto blocks = reserve(cfg, 300);
    DirectGraphLayout layout = buildLayout(g, feat, cfg, blocks);
    ASSERT_EQ(checkLayoutInvariants(layout), "");

    flash::PageStore store(cfg);
    materialize(layout, g, feat, store);
    EXPECT_EQ(store.programmedPages(), layout.pages.size());

    PageByteSource bytes(store, feat.dim());
    LayoutSource meta(layout, g);

    for (graph::NodeId v = 0; v < g.numNodes(); ++v) {
        // Primary sections agree between byte and layout sources.
        auto a = bytes.fetch(layout.nodes[v].primary);
        auto b = meta.fetch(layout.nodes[v].primary);
        ASSERT_TRUE(a && b) << "node " << v;
        EXPECT_EQ(a->node, v);
        EXPECT_EQ(a->node, b->node);
        EXPECT_EQ(a->type, b->type);
        EXPECT_EQ(a->totalNeighbors, b->totalNeighbors);
        EXPECT_EQ(a->inPage, b->inPage);
        ASSERT_EQ(a->secondaries.size(), b->secondaries.size());
        for (std::size_t j = 0; j < a->secondaries.size(); ++j) {
            EXPECT_EQ(a->secondaries[j].addr, b->secondaries[j].addr);
            EXPECT_EQ(a->secondaries[j].count, b->secondaries[j].count);
        }
        ASSERT_EQ(a->neighborAddrs.size(), b->neighborAddrs.size());
        for (std::size_t j = 0; j < a->neighborAddrs.size(); ++j)
            EXPECT_EQ(a->neighborAddrs[j], b->neighborAddrs[j]);
        // Secondary sections too.
        for (const auto &r : layout.nodes[v].secondaries) {
            auto sa = bytes.fetch(r.addr);
            auto sb = meta.fetch(r.addr);
            ASSERT_TRUE(sa && sb);
            EXPECT_EQ(sa->node, v);
            EXPECT_EQ(sa->totalNeighbors, sb->totalNeighbors);
            ASSERT_EQ(sa->neighborAddrs.size(), sb->neighborAddrs.size());
            for (std::size_t j = 0; j < sa->neighborAddrs.size(); ++j)
                EXPECT_EQ(sa->neighborAddrs[j], sb->neighborAddrs[j]);
        }
    }
}

TEST(Builder, FeatureBytesSurviveRoundTrip)
{
    flash::FlashConfig cfg = smallFlash();
    graph::Graph g = graph::generateRing(32, 3);
    graph::FeatureTable feat(24, 9);
    auto blocks = reserve(cfg, 8);
    DirectGraphLayout layout = buildLayout(g, feat, cfg, blocks);
    flash::PageStore store(cfg);
    materialize(layout, g, feat, store);

    // Check the raw feature bytes inside the page image.
    for (graph::NodeId v = 0; v < g.numNodes(); ++v) {
        DgAddress a = layout.nodes[v].primary;
        auto page = store.read(a.page());
        ASSERT_FALSE(page.empty());
        auto sec = findSection(page, a.section(), feat.dim());
        ASSERT_TRUE(sec.has_value());
        const SectionPlacement *sp = layout.find(a);
        ASSERT_NE(sp, nullptr);
        std::uint32_t feat_off =
            sp->byteOffset + kHeaderBytes +
            static_cast<std::uint32_t>(sec->secondaries.size()) *
                kSecondaryRefBytes;
        for (std::uint16_t i = 0; i < feat.dim(); ++i) {
            std::uint16_t expect = feat.raw(v, i);
            std::uint16_t got = static_cast<std::uint16_t>(
                page[feat_off + 2 * i] |
                (page[feat_off + 2 * i + 1] << 8));
            ASSERT_EQ(got, expect) << "node " << v << " elem " << i;
        }
    }
}

TEST(Builder, ExhaustedBlockListIsFatal)
{
    flash::FlashConfig cfg = smallFlash();
    graph::Graph g = graph::generateRing(2000, 64);
    graph::FeatureTable feat(128, 3);
    std::vector<flash::BlockId> one_block = {0};
    EXPECT_DEATH(
        { buildLayout(g, feat, cfg, one_block); }, "exhausted");
}

TEST(Verifier, AcceptsOwnPagesRejectsForeign)
{
    flash::FlashConfig cfg = smallFlash();
    graph::Graph g = graph::generateRing(64, 6);
    graph::FeatureTable feat(16, 2);
    auto blocks = reserve(cfg, 8);
    DirectGraphLayout layout = buildLayout(g, feat, cfg, blocks);
    flash::PageStore store(cfg);
    materialize(layout, g, feat, store);

    AddressVerifier verifier(layout.blocks, cfg.pagesPerBlock);
    for (const auto &[ppa, dir] : layout.pages) {
        EXPECT_TRUE(verifier.pageAllowed(ppa));
        auto page = store.read(ppa);
        EXPECT_TRUE(verifier.pageImageSafe(ppa, page, feat.dim()));
    }
    // A page outside the reserved blocks is rejected.
    flash::Ppa foreign =
        static_cast<flash::Ppa>(cfg.totalPages() - 1);
    EXPECT_FALSE(verifier.pageAllowed(foreign));

    // A page image with an embedded out-of-range address is rejected.
    std::vector<std::uint8_t> evil(cfg.pageSize, 0);
    std::vector<DgAddress> bad = {DgAddress(foreign, 0)};
    encodeSecondary(evil, 1, bad);
    flash::Ppa dest = layout.nodes[0].primary.page();
    EXPECT_FALSE(verifier.pageImageSafe(dest, evil, feat.dim()));
}

TEST(Builder, InflationAccounting)
{
    flash::FlashConfig cfg = smallFlash();
    graph::GeneratorParams gp;
    gp.nodes = 2000;
    gp.avgDegree = 28;
    graph::Graph g = graph::generatePowerLaw(gp);
    graph::FeatureTable feat(100, 4);
    auto blocks = reserve(cfg, 700);
    DirectGraphLayout layout = buildLayout(g, feat, cfg, blocks);
    EXPECT_EQ(layout.stats.rawBytes,
              g.numEdges() * 4 + 2000ull * 200);
    EXPECT_GE(layout.stats.flashBytes, layout.stats.usedBytes);
    EXPECT_GT(layout.stats.inflatePct(), 0.0);
    EXPECT_LT(layout.stats.inflatePct(), 120.0);
}

} // namespace

namespace {

using namespace beacongnn;
using namespace beacongnn::dg;

TEST(Codec, FuzzDecodeNeverCrashes)
{
    // decodeSection / findSection / decodePage must reject arbitrary
    // bytes gracefully — the on-die §VI-E check depends on it.
    sim::Pcg32 rng(0xF422);
    std::vector<std::uint8_t> page(4096);
    for (int round = 0; round < 300; ++round) {
        for (auto &b : page)
            b = static_cast<std::uint8_t>(rng.next());
        // Bias some rounds toward plausible type bytes so the deeper
        // decode paths get fuzzed too.
        if (round % 3 == 0)
            page[0] = static_cast<std::uint8_t>(1 + round % 2);
        auto s0 = decodeSection(page, 0, 64);
        if (s0) {
            EXPECT_LE(s0->neighborAddrs.size(), 4096u / 4);
        }
        for (unsigned idx = 0; idx < kMaxSectionsPerPage; idx += 5)
            (void)findSection(page, idx, 64);
        auto all = decodePage(page, 64);
        EXPECT_LE(all.size(), kMaxSectionsPerPage);
    }
}

TEST(Codec, FuzzTruncatedSections)
{
    // Valid sections truncated at every boundary must decode to
    // nullopt, never read out of bounds.
    std::vector<std::uint8_t> full(4096, 0);
    std::vector<SecondaryRef> secs = {{DgAddress(3, 1), 9}};
    std::vector<std::uint8_t> feat(32, 5);
    std::vector<DgAddress> nbrs = {DgAddress(1, 0), DgAddress(2, 1)};
    std::uint32_t size = encodePrimary(full, 7, 11, secs, feat, nbrs);
    for (std::uint32_t cut = 0; cut < size; ++cut) {
        std::span<const std::uint8_t> prefix(full.data(), cut);
        auto dec = decodeSection(prefix, 0, 16);
        EXPECT_FALSE(dec.has_value()) << "cut=" << cut;
    }
}

} // namespace
