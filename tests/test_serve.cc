/**
 * @file
 * Unit tests for the online serving subsystem: arrival-stream
 * determinism, micro-batching dispatch decisions (timeout vs max
 * batch size), QoS-class ordering, histogram percentile math, and
 * end-to-end serving determinism on a tiny platform.
 */

#include <gtest/gtest.h>

#include "platforms/runner.h"
#include "serve/arrival.h"
#include "serve/queue.h"
#include "serve/scheduler.h"
#include "serve/serve.h"
#include "sim/stats.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::serve;

// ---------------------------------------------------------------- arrivals

TEST(Arrivals, DeterministicUnderFixedSeed)
{
    ArrivalConfig cfg;
    cfg.ratePerSec = 5000;
    cfg.requests = 200;
    cfg.seed = 1234;

    auto a = generateArrivals(cfg, 1000);
    auto b = generateArrivals(cfg, 1000);
    ASSERT_EQ(a.size(), 200u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].target, b[i].target);
        EXPECT_EQ(a[i].tenant, b[i].tenant);
        EXPECT_EQ(a[i].qos, b[i].qos);
    }
}

TEST(Arrivals, SeedChangesStream)
{
    ArrivalConfig cfg;
    cfg.requests = 64;
    cfg.seed = 1;
    auto a = generateArrivals(cfg, 1000);
    cfg.seed = 2;
    auto b = generateArrivals(cfg, 1000);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs = differs || a[i].arrival != b[i].arrival ||
                  a[i].target != b[i].target;
    EXPECT_TRUE(differs);
}

TEST(Arrivals, MonotonicAndInRange)
{
    for (auto process :
         {ArrivalProcess::Poisson, ArrivalProcess::Bursty}) {
        ArrivalConfig cfg;
        cfg.process = process;
        cfg.ratePerSec = 20000;
        cfg.requests = 500;
        cfg.tenants = 5;
        auto a = generateArrivals(cfg, 777);
        sim::Tick prev = 0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].id, i);
            EXPECT_GE(a[i].arrival, prev);
            prev = a[i].arrival;
            EXPECT_LT(a[i].target, 777u);
            EXPECT_LT(a[i].tenant, 5u);
            EXPECT_EQ(static_cast<unsigned>(a[i].qos),
                      a[i].tenant % kQosClasses);
        }
    }
}

TEST(Arrivals, MeanRateNearConfigured)
{
    ArrivalConfig cfg;
    cfg.ratePerSec = 10000;
    cfg.requests = 2000;
    auto a = generateArrivals(cfg, 1000);
    double span_s = sim::toSeconds(a.back().arrival);
    double rate = static_cast<double>(a.size()) / span_s;
    EXPECT_NEAR(rate, 10000, 1500); // Poisson, 2000 samples.
}

// ---------------------------------------------------------------- queue

Request
req(std::uint64_t id, sim::Tick at, QosClass q = QosClass::Standard)
{
    Request r;
    r.id = id;
    r.arrival = at;
    r.qos = q;
    return r;
}

TEST(AdmissionQueue, PriorityAcrossClassesFifoWithin)
{
    AdmissionQueue q;
    q.push(req(0, 10, QosClass::Batch));
    q.push(req(1, 11, QosClass::Interactive));
    q.push(req(2, 12, QosClass::Standard));
    q.push(req(3, 13, QosClass::Interactive));
    q.push(req(4, 14, QosClass::Batch));

    // Oldest queued request is the Batch one, despite low priority.
    EXPECT_EQ(q.oldestArrival(), 10u);

    std::vector<std::uint64_t> order;
    while (!q.empty())
        order.push_back(q.pop().id);
    EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 3, 2, 0, 4}));
    EXPECT_EQ(q.peakDepth(), 5u);
}

// ---------------------------------------------------------------- scheduler

TEST(MicroBatcher, DispatchesImmediatelyOnFullBacklog)
{
    BatchPolicy p;
    p.maxBatch = 4;
    p.timeout = sim::microseconds(100);
    std::vector<Request> arr;
    for (std::uint64_t i = 0; i < 10; ++i)
        arr.push_back(req(i, 0));

    MicroBatcher mb(p, arr);
    Dispatch d;
    // Server free at 50: all 10 queued, batch full -> dispatch now.
    ASSERT_TRUE(mb.next(50, d));
    EXPECT_EQ(d.at, 50u);
    ASSERT_EQ(d.batch.size(), 4u);
    EXPECT_EQ(d.batch[0].id, 0u);
    EXPECT_EQ(d.batch[3].id, 3u);

    ASSERT_TRUE(mb.next(60, d));
    EXPECT_EQ(d.at, 60u);
    ASSERT_EQ(d.batch.size(), 4u);
    EXPECT_EQ(d.batch[0].id, 4u);

    // The leftover partial batch rides out its timeout (anchored on
    // its oldest member's arrival at 0), even though the server is
    // free earlier.
    ASSERT_TRUE(mb.next(70, d));
    EXPECT_EQ(d.at, sim::microseconds(100));
    EXPECT_EQ(d.batch.size(), 2u);
    EXPECT_FALSE(mb.next(d.at, d));
}

TEST(MicroBatcher, TimeoutDispatchesPartialBatch)
{
    BatchPolicy p;
    p.maxBatch = 8;
    p.timeout = sim::microseconds(100);
    // Two early requests, then a long gap.
    std::vector<Request> arr = {req(0, 1000), req(1, 2000),
                                req(2, sim::milliseconds(5))};

    MicroBatcher mb(p, arr);
    Dispatch d;
    ASSERT_TRUE(mb.next(0, d));
    // Oldest arrival 1000 + 100 us timeout = 101000.
    EXPECT_EQ(d.at, 101000u);
    ASSERT_EQ(d.batch.size(), 2u);
    EXPECT_EQ(d.batch[0].id, 0u);
    EXPECT_EQ(d.batch[1].id, 1u);

    // The straggler dispatches on its own timeout.
    ASSERT_TRUE(mb.next(d.at, d));
    EXPECT_EQ(d.at, sim::milliseconds(5) + sim::microseconds(100));
    EXPECT_EQ(d.batch.size(), 1u);
}

TEST(MicroBatcher, FillingArrivalBeatsTimeout)
{
    BatchPolicy p;
    p.maxBatch = 4;
    p.timeout = sim::microseconds(100);
    // Four arrivals 10 us apart: the 4th (at 30 us) fills the batch
    // before the oldest times out at 100 us.
    std::vector<Request> arr = {
        req(0, sim::microseconds(0)), req(1, sim::microseconds(10)),
        req(2, sim::microseconds(20)), req(3, sim::microseconds(30))};

    MicroBatcher mb(p, arr);
    Dispatch d;
    ASSERT_TRUE(mb.next(0, d));
    EXPECT_EQ(d.at, sim::microseconds(30));
    EXPECT_EQ(d.batch.size(), 4u);
}

TEST(MicroBatcher, IdleServerWaitsForNextArrival)
{
    BatchPolicy p;
    p.maxBatch = 4;
    p.timeout = sim::microseconds(50);
    std::vector<Request> arr = {req(0, sim::milliseconds(3))};

    MicroBatcher mb(p, arr);
    Dispatch d;
    ASSERT_TRUE(mb.next(0, d));
    // Nothing queued until 3 ms; lone request rides its timeout.
    EXPECT_EQ(d.at, sim::milliseconds(3) + sim::microseconds(50));
    EXPECT_EQ(d.batch.size(), 1u);
}

TEST(MicroBatcher, BatchPrefersHighPriorityWhenBacklogged)
{
    BatchPolicy p;
    p.maxBatch = 2;
    p.timeout = sim::microseconds(100);
    std::vector<Request> arr = {
        req(0, 0, QosClass::Batch), req(1, 1, QosClass::Batch),
        req(2, 2, QosClass::Interactive),
        req(3, 3, QosClass::Interactive)};

    MicroBatcher mb(p, arr);
    Dispatch d;
    ASSERT_TRUE(mb.next(10, d));
    // Backlog of 4: the two Interactive requests jump the queue.
    ASSERT_EQ(d.batch.size(), 2u);
    EXPECT_EQ(d.batch[0].id, 2u);
    EXPECT_EQ(d.batch[1].id, 3u);
    // Batch-class requests drain next, in FIFO order.
    ASSERT_TRUE(mb.next(20, d));
    EXPECT_EQ(d.batch[0].id, 0u);
    EXPECT_EQ(d.batch[1].id, 1u);
}

// ---------------------------------------------------------------- percentile

TEST(Percentile, EmptyHistogram)
{
    sim::Histogram h(10.0, 8);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
}

TEST(Percentile, HandComputedUniform)
{
    // 100 samples: 5, 15, 25, ..., 995 — one per 10-wide bucket.
    sim::Histogram h(10.0, 128);
    for (int i = 0; i < 100; ++i)
        h.add(10.0 * i + 5.0);

    // p50: target rank 50 -> 50th bucket [490, 500), fraction 1.0.
    EXPECT_DOUBLE_EQ(h.percentile(50), 500.0);
    // p95: rank 95 -> bucket [940, 950), fraction 1.0 -> 950.
    EXPECT_DOUBLE_EQ(h.percentile(95), 950.0);
    // p0 clamps to the observed minimum.
    EXPECT_DOUBLE_EQ(h.percentile(0), 5.0);
    // p100 clamps to the observed maximum.
    EXPECT_DOUBLE_EQ(h.percentile(100), 995.0);
}

TEST(Percentile, InterpolatesWithinBucket)
{
    // 4 samples in one bucket [0, 10): ranks interpolate linearly.
    sim::Histogram h(10.0, 4);
    for (int i = 0; i < 4; ++i)
        h.add(2.0 * i + 1.0); // 1, 3, 5, 7
    // p50 -> target 2 of 4 -> fraction 0.5 of [0,10) = 5.
    EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
    // p25 -> target 1 of 4 -> 2.5.
    EXPECT_DOUBLE_EQ(h.percentile(25), 2.5);
}

TEST(Percentile, OverflowBucketClampsToObservedMax)
{
    // Histogram spans [0, 40); samples far beyond land in the
    // overflow bucket and must not be reported as ~40.
    sim::Histogram h(10.0, 4);
    h.add(5.0);
    h.add(1000.0);
    h.add(2000.0);
    h.add(3000.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 3000.0);
    // p75 -> target 3 of 4 -> 2/3 through the overflow bucket
    // [30, 3000]: 30 + (2/3) * 2970 = 2010.
    EXPECT_DOUBLE_EQ(h.percentile(75), 2010.0);
    EXPECT_GT(h.percentile(99), 40.0);
}

TEST(Percentile, BatchHandComputedUniform)
{
    // The same 100-sample stream as HandComputedUniform, resolved in
    // one bucket walk; quantiles are fractions, not percents.
    sim::Histogram h(10.0, 128);
    for (int i = 0; i < 100; ++i)
        h.add(10.0 * i + 5.0);
    const std::vector<double> ps =
        h.percentiles({0.0, 0.5, 0.95, 1.0});
    ASSERT_EQ(ps.size(), 4u);
    EXPECT_DOUBLE_EQ(ps[0], 5.0);   // clamps to observed minimum
    EXPECT_DOUBLE_EQ(ps[1], 500.0); // p50
    EXPECT_DOUBLE_EQ(ps[2], 950.0); // p95
    EXPECT_DOUBLE_EQ(ps[3], 995.0); // clamps to observed maximum
}

TEST(Percentile, BatchMatchesSingleCallsEverywhere)
{
    // Contract: percentiles({q})[0] == percentile(100 * q) for any q,
    // including the high-tail quantiles the serve tables print.
    sim::Histogram h(10.0, 64);
    h.add(5.0);
    h.add(1000.0); // overflow bucket
    h.add(2000.0);
    h.add(3000.0);
    const std::vector<double> qs = {0.0,  0.25, 0.5,  0.75,
                                    0.95, 0.99, 0.999, 1.0};
    const std::vector<double> batch = h.percentiles(qs);
    ASSERT_EQ(batch.size(), qs.size());
    for (std::size_t i = 0; i < qs.size(); ++i)
        EXPECT_DOUBLE_EQ(batch[i], h.percentile(100.0 * qs[i]))
            << "q = " << qs[i];
}

TEST(Percentile, BatchPreservesUnsortedInputOrder)
{
    sim::Histogram h(10.0, 16);
    for (int i = 0; i < 10; ++i)
        h.add(10.0 * i + 5.0);
    // Deliberately unsorted (and duplicated) quantiles: results come
    // back in the caller's order.
    const std::vector<double> ps =
        h.percentiles({0.99, 0.5, 0.99});
    ASSERT_EQ(ps.size(), 3u);
    EXPECT_DOUBLE_EQ(ps[0], h.percentile(99));
    EXPECT_DOUBLE_EQ(ps[1], h.percentile(50));
    EXPECT_DOUBLE_EQ(ps[2], ps[0]);
}

TEST(Percentile, BatchEmptyHistogramIsAllZero)
{
    sim::Histogram h(10.0, 8);
    const std::vector<double> ps = h.percentiles({0.5, 0.999});
    ASSERT_EQ(ps.size(), 2u);
    EXPECT_DOUBLE_EQ(ps[0], 0.0);
    EXPECT_DOUBLE_EQ(ps[1], 0.0);
    EXPECT_TRUE(h.percentiles({}).empty());
}

// ---------------------------------------------------------------- end to end

std::unique_ptr<platforms::WorkloadBundle>
tinyBundle()
{
    graph::WorkloadSpec spec = graph::workload("OGBN");
    flash::FlashConfig flash_cfg;
    gnn::ModelConfig model;
    return platforms::makeBundle(spec, flash_cfg, model, 1500);
}

TEST(Serve, EndToEndCompletesEveryRequest)
{
    auto bundle = tinyBundle();
    platforms::RunConfig rc;
    ServeConfig sc;
    sc.arrivals.ratePerSec = 20000;
    sc.arrivals.requests = 96;
    sc.arrivals.seed = 9;
    sc.policy.maxBatch = 16;

    std::vector<RequestOutcome> outcomes;
    auto res = serveWorkload(platforms::makePlatform(
                                 platforms::PlatformKind::BG2),
                             rc, *bundle, sc, &outcomes);

    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.requests, 96u);
    ASSERT_EQ(outcomes.size(), 96u);
    EXPECT_GT(res.batches, 0u);
    EXPECT_GT(res.achievedRate, 0.0);

    // Every request: arrival <= dispatch <= prepDone <= done, and
    // every id appears exactly once.
    std::vector<bool> seen(96, false);
    for (const auto &o : outcomes) {
        EXPECT_LE(o.arrival, o.dispatch);
        EXPECT_LE(o.dispatch, o.prepDone);
        EXPECT_LE(o.prepDone, o.done);
        ASSERT_LT(o.id, 96u);
        EXPECT_FALSE(seen[o.id]);
        seen[o.id] = true;
    }
    // Class totals match the overall tally.
    std::uint64_t class_total = 0;
    for (const auto &c : res.perClass)
        class_total += c.requests;
    EXPECT_EQ(class_total, res.requests);
}

TEST(Serve, ResultDeterministicAcrossRuns)
{
    auto bundle = tinyBundle();
    platforms::RunConfig rc;
    ServeConfig sc;
    sc.arrivals.ratePerSec = 50000;
    sc.arrivals.requests = 64;
    sc.arrivals.seed = 77;
    sc.policy.maxBatch = 8;

    auto p = platforms::makePlatform(platforms::PlatformKind::BG2);
    auto a = serveWorkload(p, rc, *bundle, sc);
    auto b = serveWorkload(p, rc, *bundle, sc);

    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.peakQueueDepth, b.peakQueueDepth);
    EXPECT_DOUBLE_EQ(a.achievedRate, b.achievedRate);
    EXPECT_DOUBLE_EQ(a.totalUs.mean(), b.totalUs.mean());
    EXPECT_DOUBLE_EQ(a.p(99), b.p(99));
    EXPECT_EQ(a.violations(), b.violations());
}

TEST(Serve, OverloadSaturatesAndQueues)
{
    auto bundle = tinyBundle();
    platforms::RunConfig rc;
    ServeConfig sc;
    sc.arrivals.requests = 96;
    sc.arrivals.seed = 5;
    sc.policy.maxBatch = 16;

    auto p = platforms::makePlatform(platforms::PlatformKind::CC);
    sc.arrivals.ratePerSec = 2000; // Light load.
    auto light = serveWorkload(p, rc, *bundle, sc);
    sc.arrivals.ratePerSec = 2e6; // Far beyond CC's capacity.
    auto heavy = serveWorkload(p, rc, *bundle, sc);

    EXPECT_FALSE(light.saturated());
    EXPECT_TRUE(heavy.saturated());
    EXPECT_GT(heavy.p(99), light.p(99));
    EXPECT_GT(heavy.peakQueueDepth, light.peakQueueDepth);
    // Under overload the mean batch fills to the cap.
    EXPECT_DOUBLE_EQ(heavy.meanBatchSize, 16.0);
}

} // namespace
