/**
 * @file
 * Tests for the replica-aware placement layer and health-aware fault
 * routing (DESIGN.md §17): chained-declustered replica sets are
 * distinct and clamp correctly, replication = 1 is byte-identical to
 * the historical single-owner Partition, and a replicated array run
 * with a device killed produces byte-identical fingerprints across
 * worker counts — the determinism property extended to faulted runs.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "graph/dataset.h"
#include "platforms/array.h"
#include "platforms/partition.h"
#include "platforms/report.h"
#include "sim/executor.h"
#include "sim/metrics.h"
#include "sim/trace_events.h"

namespace {

using namespace beacongnn;
using platforms::Partition;
using platforms::PartitionPolicy;
using platforms::Placement;

graph::Graph
testGraph(graph::NodeId nodes = 1500)
{
    auto spec = graph::workload("amazon");
    spec.simNodes = nodes;
    return spec.makeGraph();
}

const std::vector<PartitionPolicy> kPolicies = {
    PartitionPolicy::Hash, PartitionPolicy::Range,
    PartitionPolicy::Balanced};

// ==================================================================
// Placement: replica structure.
// ==================================================================

TEST(Placement, ReplicasDistinctAndChained)
{
    auto g = testGraph();
    for (PartitionPolicy pol : kPolicies) {
        for (unsigned r : {2u, 3u}) {
            Placement pl = Placement::build(g, pol, 4, r);
            Partition pa = Partition::build(g, pol, 4);
            ASSERT_EQ(pl.replication(), r);
            for (graph::NodeId v = 0; v < g.numNodes(); ++v) {
                std::vector<unsigned> reps = pl.replicasOf(v);
                ASSERT_EQ(reps.size(), r);
                // Replica 0 is the policy-assigned primary.
                ASSERT_EQ(reps[0], pa.ownerOf(v));
                ASSERT_EQ(reps[0], pl.primaryOf(v));
                std::set<unsigned> distinct(reps.begin(), reps.end());
                ASSERT_EQ(distinct.size(), r) << "node " << v;
                for (unsigned k = 0; k < r; ++k)
                    ASSERT_EQ(reps[k], (pa.ownerOf(v) + k) % 4u);
            }
        }
    }
}

TEST(Placement, ReplicationClampsToDeviceCount)
{
    auto g = testGraph(400);
    // 0 clamps up to 1; anything beyond the device count clamps down.
    EXPECT_EQ(
        Placement::build(g, PartitionPolicy::Hash, 4, 0).replication(),
        1u);
    EXPECT_EQ(
        Placement::build(g, PartitionPolicy::Hash, 4, 99).replication(),
        4u);
}

TEST(Placement, SingleDeviceIsDegenerate)
{
    auto g = testGraph(400);
    Placement pl = Placement::build(g, PartitionPolicy::Hash, 1, 3);
    EXPECT_EQ(pl.replication(), 1u);
    EXPECT_TRUE(pl.table().empty());
    EXPECT_EQ(pl.primaryOf(0), 0u);
    std::vector<unsigned> want = {0};
    EXPECT_EQ(pl.replicasOf(g.numNodes() - 1), want);
}

// ==================================================================
// Placement: replication = 1 is the historical Partition.
// ==================================================================

TEST(Placement, ReplicationOneMatchesPartitionByteForByte)
{
    auto g = testGraph();
    for (PartitionPolicy pol : kPolicies) {
        Placement pl = Placement::build(g, pol, 4, 1);
        Partition pa = Partition::build(g, pol, 4);
        // The engine routes off table(); identical tables mean the
        // degenerate placement routes byte-identically.
        EXPECT_EQ(pl.table(), pa.table())
            << platforms::partitionPolicyName(pol);
        EXPECT_EQ(pl.degreeSpread(), pa.degreeSpread());
        for (unsigned d = 0; d < 4; ++d) {
            EXPECT_EQ(pl.nodesOn(d), pa.nodesOn(d));
            EXPECT_EQ(pl.degreeOn(d), pa.degreeOn(d));
        }
    }
}

// ==================================================================
// Faulted array runs: byte-identical across worker counts.
// ==================================================================

struct FaultRig
{
    std::unique_ptr<platforms::WorkloadBundle> bundle;
    platforms::RunConfig rc;

    FaultRig()
    {
        gnn::ModelConfig model;
        ssd::SystemConfig sys;
        auto spec = graph::workload("amazon");
        spec.simNodes = 4000;
        bundle = platforms::makeBundle(spec, sys.flash, model);
        rc.batchSize = 32;
        rc.batches = 2;
    }

    ~FaultRig() { sim::SimExecutor::setDefaultJobs(0); }

    struct Fingerprint
    {
        std::string json, csv, trace;
        std::uint64_t fallbacks = 0;
        bool ok = false;

        bool
        operator==(const Fingerprint &o) const
        {
            return json == o.json && csv == o.csv &&
                   trace == o.trace && fallbacks == o.fallbacks &&
                   ok == o.ok;
        }
    };

    Fingerprint
    run(const platforms::ArrayConfig &acfg, unsigned jobs)
    {
        sim::SimExecutor::setDefaultJobs(jobs);
        sim::TraceSink sink;
        platforms::RunConfig traced = rc;
        traced.traceSink = &sink;
        sim::MetricRegistry reg;
        auto r = platforms::runArray(acfg, traced, *bundle, &reg);
        Fingerprint fp;
        fp.ok = r.ok;
        fp.fallbacks = r.run.replicaFallbacks;
        std::ostringstream json, csv, trace;
        reg.writeJson(json);
        platforms::writeCsvRow(csv, r.run);
        sink.write(trace);
        fp.json = json.str();
        fp.csv = csv.str();
        fp.trace = trace.str();
        return fp;
    }
};

TEST(FaultDeterminism, KilledDeviceReroutesIdenticallyAcrossJobs)
{
    FaultRig rig;
    // Device 3 is down from tick 0: every command whose primary is
    // dev3 must fall back to a surviving replica, on any worker count.
    rig.rc.kills.push_back(platforms::KillEvent{3, -1, 0});
    platforms::ArrayConfig acfg;
    acfg.devices = 8;
    acfg.replication = 2;
    auto j1 = rig.run(acfg, 1);
    auto j2 = rig.run(acfg, 2);
    auto j8 = rig.run(acfg, 8);
    EXPECT_TRUE(j1.ok); // R=2 absorbs the kill; no command is lost.
    EXPECT_GT(j1.fallbacks, 0u);
    EXPECT_EQ(j1, j2);
    EXPECT_EQ(j1, j8);
    // The fault instruments exist on a faulted run.
    EXPECT_NE(j1.json.find("engine.router.replica_fallbacks"),
              std::string::npos);
    EXPECT_NE(j1.json.find("health.alive"), std::string::npos);
}

TEST(FaultDeterminism, UnreplicatedKillFailsDeterministically)
{
    FaultRig rig;
    // With replication = 1 there is nowhere to reroute: commands for
    // the dead device abort — but identically on every worker count.
    rig.rc.kills.push_back(platforms::KillEvent{1, -1, 0});
    platforms::ArrayConfig acfg;
    acfg.devices = 4;
    auto j1 = rig.run(acfg, 1);
    auto j4 = rig.run(acfg, 4);
    EXPECT_FALSE(j1.ok);
    EXPECT_EQ(j1.fallbacks, 0u);
    EXPECT_EQ(j1, j4);
}

TEST(FaultDeterminism, DisturbedReadsIdenticalAcrossJobs)
{
    FaultRig rig;
    // Read-retry disturbance only (no kills): timing inflates but the
    // hash-chain draw is device/die/seq-keyed, so outputs still match.
    rig.rc.system.disturb.retryProb = 0.05;
    platforms::ArrayConfig acfg;
    acfg.devices = 4;
    auto j1 = rig.run(acfg, 1);
    auto j4 = rig.run(acfg, 4);
    EXPECT_TRUE(j1.ok);
    EXPECT_NE(j1.json.find("flash.retries"), std::string::npos);
    EXPECT_EQ(j1, j4);
}

TEST(FaultDeterminism, ReplicationAloneKeepsRunHealthy)
{
    FaultRig rig;
    platforms::ArrayConfig acfg;
    acfg.devices = 4;
    acfg.replication = 2;
    auto j1 = rig.run(acfg, 1);
    auto j4 = rig.run(acfg, 4);
    EXPECT_TRUE(j1.ok);
    EXPECT_EQ(j1, j4);
    // No faults: replication spreads load but never falls back.
    EXPECT_NE(j1.json.find("array.replication"), std::string::npos);
}

} // namespace
