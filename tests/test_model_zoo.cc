/**
 * @file
 * Model zoo and vertex programs (DESIGN.md §15): fanout-schedule
 * arithmetic hand-checked, per-kind compute workloads (gcn must equal
 * the historical single-GEMM estimate, gin adds the MLP matrix, gat
 * adds per-edge attention work), the `--fanouts 3,3,3` ==
 * `fanout=3` byte-identity the CLI relies on, PageRank / BFS / k-core
 * hand-checked on tiny adjacency lists, the convergence driver on CC
 * and BG-2, and multi-model serving tallies.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "gnn/model.h"
#include "gnn/vertex_program.h"
#include "platforms/algo_runner.h"
#include "platforms/platform.h"
#include "platforms/runner.h"
#include "serve/serve.h"
#include "sim/metrics.h"

using namespace beacongnn;

namespace {

// ==================================================================
// ModelSpec fanout schedules.
// ==================================================================

TEST(FanoutSchedule, NodesThroughHopHandChecked)
{
    gnn::ModelSpec m;
    m.hops = 3;
    m.fanouts = {2, 3};
    // fanoutAt pads with the last entry: 2, 3, 3.
    EXPECT_EQ(m.fanoutAt(0), 2);
    EXPECT_EQ(m.fanoutAt(1), 3);
    EXPECT_EQ(m.fanoutAt(2), 3);
    EXPECT_FALSE(m.uniformFanout());
    // Levels: 1, 2, 6, 18 -> cumulative 1, 3, 9, 27.
    EXPECT_EQ(m.nodesAtHop(0), 1u);
    EXPECT_EQ(m.nodesAtHop(1), 2u);
    EXPECT_EQ(m.nodesAtHop(2), 6u);
    EXPECT_EQ(m.nodesAtHop(3), 18u);
    EXPECT_EQ(m.nodesThroughHop(0), 1u);
    EXPECT_EQ(m.nodesThroughHop(1), 3u);
    EXPECT_EQ(m.nodesThroughHop(2), 9u);
    EXPECT_EQ(m.subgraphNodes(), 27u);
}

TEST(FanoutSchedule, UniformSpecMatchesHistoricalShape)
{
    gnn::ModelSpec m; // hops 3, fanout 3.
    EXPECT_TRUE(m.uniformFanout());
    EXPECT_EQ(m.subgraphNodes(), 40u); // 1 + 3 + 9 + 27.
}

TEST(FanoutSchedule, NormalizeCollapsesAllEqualToUniform)
{
    gnn::ModelSpec uniform;
    gnn::ModelSpec listed;
    listed.fanouts = {3, 3, 3};
    EXPECT_FALSE(listed == uniform);
    listed.normalizeFanouts();
    EXPECT_TRUE(listed.uniformFanout());
    EXPECT_EQ(listed.fanout, 3);
    EXPECT_TRUE(listed == uniform);
    // A genuinely tapered schedule survives normalization.
    gnn::ModelSpec tapered;
    tapered.fanouts = {5, 3, 2};
    tapered.normalizeFanouts();
    EXPECT_FALSE(tapered.uniformFanout());
}

TEST(FanoutSchedule, ParseFanouts)
{
    auto ok = gnn::parseFanouts("3,2,2");
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(*ok, (std::vector<std::uint8_t>{3, 2, 2}));
    EXPECT_FALSE(gnn::parseFanouts("").has_value());
    EXPECT_FALSE(gnn::parseFanouts("3,0,2").has_value());
    EXPECT_FALSE(gnn::parseFanouts("3,x").has_value());
    EXPECT_FALSE(gnn::parseFanouts("256").has_value());
    EXPECT_FALSE(gnn::parseFanouts("3,,2").has_value());
}

// ==================================================================
// Per-kind compute workloads.
// ==================================================================

TEST(ModelWork, GcnMatchesHistoricalEstimate)
{
    gnn::ModelSpec m;
    m.hops = 2;
    m.fanout = 2;
    m.featureDim = 64;
    m.hiddenDim = 32;
    const std::uint32_t batch = 4;
    gnn::ComputeWorkload w = m.workFor(batch);
    // Historical shape: one GEMM per layer, layer l updates the
    // nodes surviving through hop K-l.
    ASSERT_EQ(w.gemms.size(), 2u);
    EXPECT_EQ(w.gemms[0].m, 4u * 3u); // batch * (1 + 2)
    EXPECT_EQ(w.gemms[0].k, 64u);
    EXPECT_EQ(w.gemms[0].n, 32u);
    EXPECT_EQ(w.gemms[1].m, 4u * 1u);
    EXPECT_EQ(w.gemms[1].k, 32u);
    EXPECT_EQ(w.gemms[1].n, 32u);
    // Aggregation sums fanout+1 vectors per updated node.
    EXPECT_EQ(w.aggregateElements,
              12u * 3u * 64u + 4u * 3u * 32u);
    EXPECT_EQ(w.edgeOps, 0u); // gcn leaves the historical timing alone.
    EXPECT_EQ(gnn::estimateCompute(m, batch).totalMacs(),
              w.totalMacs());
}

TEST(ModelWork, GinAddsMlpMatrixAndEpsilonOps)
{
    gnn::ModelSpec gcn, gin;
    gin.kind = gnn::ModelKind::GIN;
    const std::uint32_t batch = 8;
    gnn::ComputeWorkload wg = gcn.workFor(batch);
    gnn::ComputeWorkload wi = gin.workFor(batch);
    // Two GEMMs per layer instead of one; same aggregation volume.
    EXPECT_EQ(wi.gemms.size(), 2u * wg.gemms.size());
    EXPECT_EQ(wi.aggregateElements, wg.aggregateElements);
    EXPECT_GT(wi.totalMacs(), wg.totalMacs());
    EXPECT_GT(wi.edgeOps, 0u); // (1 + eps) self-scaling.
}

TEST(ModelWork, GatAddsPerEdgeAttentionWork)
{
    gnn::ModelSpec gcn, gat;
    gat.kind = gnn::ModelKind::GAT;
    const std::uint32_t batch = 8;
    gnn::ComputeWorkload wg = gcn.workFor(batch);
    gnn::ComputeWorkload wa = gat.workFor(batch);
    EXPECT_EQ(wa.totalMacs(), wg.totalMacs());
    EXPECT_GT(wa.edgeOps, 0u);
    EXPECT_EQ(gat.edgeCoeffBytes(), 2u);
    gat.heads = 4;
    EXPECT_EQ(gat.edgeCoeffBytes(), 8u);
    EXPECT_EQ(gcn.edgeCoeffBytes(), 0u);
}

TEST(ModelWork, KindNamesRoundTrip)
{
    using gnn::ModelKind;
    EXPECT_STREQ(gnn::modelKindName(ModelKind::GCN), "gcn");
    EXPECT_EQ(gnn::findModelKind("GIN"), ModelKind::GIN);
    EXPECT_EQ(gnn::findModelKind("gat"), ModelKind::GAT);
    EXPECT_FALSE(gnn::findModelKind("sage").has_value());
    EXPECT_EQ(gnn::modelKindList(), "gcn, gin, gat");
    EXPECT_EQ(gnn::findAlgoKind("PageRank"), gnn::AlgoKind::PageRank);
    EXPECT_FALSE(gnn::findAlgoKind("sssp").has_value());
    EXPECT_EQ(gnn::algoKindList(), "pagerank, bfs, kcore");
}

// ==================================================================
// CLI-path byte-identity: `--fanouts 3,3,3` == `fanout=3`.
// ==================================================================

std::string
metricsJsonFor(const gnn::ModelSpec &model)
{
    graph::WorkloadSpec spec = graph::workload("amazon");
    spec.simNodes = 2000;
    platforms::RunConfig rc;
    rc.batchSize = 16;
    rc.batches = 2;
    auto bundle =
        platforms::makeBundle(spec, rc.system.flash, model);
    sim::MetricRegistry reg;
    platforms::RunResult r = platforms::runPlatform(
        platforms::makePlatform(platforms::PlatformKind::BG2), rc,
        *bundle, &reg);
    EXPECT_TRUE(r.ok);
    std::ostringstream os;
    reg.writeJson(os);
    return os.str();
}

TEST(ModelIdentity, ExplicitUniformFanoutsAreByteIdentical)
{
    gnn::ModelSpec uniform;
    uniform.hops = 2;
    uniform.fanout = 3;

    // What the CLI does with --fanouts 3,3,3: parse then normalize.
    gnn::ModelSpec listed;
    listed.hops = 2;
    auto parsed = gnn::parseFanouts("3,3,3");
    ASSERT_TRUE(parsed.has_value());
    listed.fanouts = *parsed;
    listed.normalizeFanouts();

    std::string a = metricsJsonFor(uniform);
    std::string b = metricsJsonFor(listed);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    // The default model publishes no model.* instruments at all.
    EXPECT_EQ(a.find("model."), std::string::npos);
}

TEST(ModelIdentity, NonDefaultModelsPublishModelNamespace)
{
    gnn::ModelSpec gat;
    gat.hops = 2;
    gat.kind = gnn::ModelKind::GAT;
    std::string j = metricsJsonFor(gat);
    EXPECT_NE(j.find("model.kind_id"), std::string::npos);
    EXPECT_NE(j.find("model.edge_coeff_bytes"), std::string::npos);

    gnn::ModelSpec tapered;
    tapered.hops = 2;
    tapered.fanouts = {3, 2};
    std::string t = metricsJsonFor(tapered);
    EXPECT_NE(t.find("model.fanout_total"), std::string::npos);
}

// ==================================================================
// Vertex programs hand-checked on tiny graphs.
// ==================================================================

TEST(VertexProgram, BfsDistancesOnAPath)
{
    // 0 - 1 - 2 - 3 (undirected), plus isolated 4.
    graph::Graph g({{1}, {0, 2}, {1, 3}, {2}, {}});
    gnn::VertexProgramConfig cfg;
    cfg.algo = gnn::AlgoKind::Bfs;
    cfg.source = 0;
    auto p = gnn::makeVertexProgram(cfg);
    p->init(g);
    EXPECT_EQ(p->frontier(),
              (std::vector<graph::NodeId>{0}));
    while (!p->frontier().empty() && !p->step(g)) {
    }
    const std::vector<double> &d = p->values();
    ASSERT_EQ(d.size(), 5u);
    EXPECT_EQ(d[0], 0.0);
    EXPECT_EQ(d[1], 1.0);
    EXPECT_EQ(d[2], 2.0);
    EXPECT_EQ(d[3], 3.0);
    EXPECT_EQ(d[4], -1.0); // Unreachable.
}

TEST(VertexProgram, PageRankSumsToOneAndRanksTheHub)
{
    // Star: every leaf points at the hub 0; hub points back at all.
    graph::Graph g({{1, 2, 3}, {0}, {0}, {0}});
    gnn::VertexProgramConfig cfg;
    cfg.algo = gnn::AlgoKind::PageRank;
    cfg.maxIters = 100;
    auto p = gnn::makeVertexProgram(cfg);
    p->init(g);
    std::uint32_t iters = 0;
    bool done = false;
    while (!done && iters < cfg.maxIters) {
        done = p->step(g);
        ++iters;
    }
    EXPECT_TRUE(done);
    const std::vector<double> &r = p->values();
    double sum = 0;
    for (double v : r)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-6);
    EXPECT_GT(r[0], r[1]); // The hub outranks every leaf.
    EXPECT_NEAR(r[1], r[2], 1e-9);
    EXPECT_NEAR(r[1], r[3], 1e-9);
}

TEST(VertexProgram, KCorePeelsTheTail)
{
    // Triangle 0-1-2 (degree 2 each) with a pendant 3 attached to 0.
    graph::Graph g({{1, 2, 3}, {0, 2}, {0, 1}, {0}});
    gnn::VertexProgramConfig cfg;
    cfg.algo = gnn::AlgoKind::KCore;
    cfg.k = 2;
    auto p = gnn::makeVertexProgram(cfg);
    p->init(g);
    while (!p->frontier().empty() && !p->step(g)) {
    }
    const std::vector<double> &core = p->values();
    ASSERT_EQ(core.size(), 4u);
    EXPECT_EQ(core[0], 1.0);
    EXPECT_EQ(core[1], 1.0);
    EXPECT_EQ(core[2], 1.0);
    EXPECT_EQ(core[3], 0.0); // Degree-1 pendant peeled.
}

// ==================================================================
// Convergence driver over the platform session.
// ==================================================================

class AlgoRunner : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        gnn::ModelConfig model;
        model.hops = 2;
        model.fanout = 2;
        graph::WorkloadSpec spec = graph::workload("amazon");
        spec.simNodes = 2000;
        platforms::RunConfig rc;
        rc.batchSize = 32;
        rc.batches = 1;
        bundle = platforms::makeBundle(spec, rc.system.flash, model)
                     .release();
        run = rc;
    }

    static void
    TearDownTestSuite()
    {
        delete bundle;
        bundle = nullptr;
    }

    static platforms::WorkloadBundle *bundle;
    static platforms::RunConfig run;
};

platforms::WorkloadBundle *AlgoRunner::bundle = nullptr;
platforms::RunConfig AlgoRunner::run;

TEST_F(AlgoRunner, PageRankConvergesOnBothPlatformFamilies)
{
    platforms::AlgoRunConfig ac;
    ac.program.algo = gnn::AlgoKind::PageRank;
    for (auto kind : {platforms::PlatformKind::CC,
                      platforms::PlatformKind::BG2}) {
        sim::MetricRegistry reg;
        platforms::AlgoRunResult r = platforms::runVertexProgram(
            platforms::makePlatform(kind), run, *bundle, ac, &reg);
        EXPECT_TRUE(r.ok);
        EXPECT_TRUE(r.converged);
        EXPECT_GT(r.iterations, 0u);
        EXPECT_GE(r.frontierNodes, bundle->graph.numNodes());
        EXPECT_GT(r.totalTime, 0u);
        EXPECT_NEAR(r.checksum, 1.0, 1e-6); // Ranks sum to 1.
        std::ostringstream os;
        reg.writeJson(os);
        EXPECT_NE(os.str().find("model.algo.iterations"),
                  std::string::npos);
    }
}

TEST_F(AlgoRunner, BfsFrontierShrinksToTheReachableSet)
{
    platforms::AlgoRunConfig ac;
    ac.program.algo = gnn::AlgoKind::Bfs;
    platforms::AlgoRunResult r = platforms::runVertexProgram(
        platforms::makePlatform(platforms::PlatformKind::BG2), run,
        *bundle, ac);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.algo, std::string("bfs"));
    // BFS reads each reached vertex exactly once.
    EXPECT_LE(r.frontierNodes, bundle->graph.numNodes());
    EXPECT_GT(r.frontierNodes, 0u);
}

TEST_F(AlgoRunner, DeterministicAcrossRuns)
{
    platforms::AlgoRunConfig ac;
    ac.program.algo = gnn::AlgoKind::KCore;
    auto once = [&] {
        sim::MetricRegistry reg;
        platforms::runVertexProgram(
            platforms::makePlatform(platforms::PlatformKind::BG2),
            run, *bundle, ac, &reg);
        std::ostringstream os;
        reg.writeJson(os);
        return os.str();
    };
    std::string a = once();
    std::string b = once();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

// ==================================================================
// Multi-model serving.
// ==================================================================

TEST(ServeModels, PerModelTalliesCoverEveryRequest)
{
    gnn::ModelConfig model;
    model.hops = 2;
    model.fanout = 2;
    graph::WorkloadSpec spec = graph::workload("amazon");
    spec.simNodes = 2000;
    platforms::RunConfig rc;
    auto bundle =
        platforms::makeBundle(spec, rc.system.flash, model);

    serve::ServeConfig sc;
    sc.arrivals.requests = 48;
    sc.arrivals.ratePerSec = 2000;
    sc.models = {gnn::ModelKind::GCN, gnn::ModelKind::GIN,
                 gnn::ModelKind::GAT};
    sc.arrivals.modelCount =
        static_cast<std::uint32_t>(sc.models.size());

    sim::MetricRegistry reg;
    serve::ServeResult r = serve::serveWorkload(
        platforms::makePlatform(platforms::PlatformKind::BG2), rc,
        *bundle, sc, nullptr, &reg);
    EXPECT_TRUE(r.ok);
    ASSERT_EQ(r.perModelRequests.size(), 3u);
    std::uint64_t sum = 0;
    for (std::uint64_t n : r.perModelRequests)
        sum += n;
    EXPECT_EQ(sum, r.requests);
    // Tenants spread round-robin over models, so each serves some.
    for (std::uint64_t n : r.perModelRequests)
        EXPECT_GT(n, 0u);
    std::ostringstream os;
    reg.writeJson(os);
    EXPECT_NE(os.str().find("model.gin.requests"), std::string::npos);
}

} // namespace
