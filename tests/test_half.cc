/**
 * @file
 * Tests for the IEEE binary16 implementation and the FP16-accurate
 * forward pass: exact round trips, rounding behaviour, special
 * values, subnormals, and bounded divergence from the FP32 path.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/compute.h"
#include "gnn/half.h"
#include "gnn/sampler.h"
#include "graph/generator.h"

namespace {

using namespace beacongnn::gnn;

TEST(Half, ExactValuesRoundTrip)
{
    // Values exactly representable in binary16 survive unchanged.
    for (float f : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f,
                    65504.0f /* max half */, 6.103515625e-05f
                    /* min normal half */}) {
        EXPECT_EQ(toHalfPrecision(f), f) << f;
    }
}

TEST(Half, SignedZero)
{
    EXPECT_EQ(floatToHalfBits(0.0f), 0x0000);
    EXPECT_EQ(floatToHalfBits(-0.0f), 0x8000);
    EXPECT_EQ(halfBitsToFloat(0x8000), -0.0f);
    EXPECT_TRUE(std::signbit(halfBitsToFloat(0x8000)));
}

TEST(Half, KnownBitPatterns)
{
    EXPECT_EQ(floatToHalfBits(1.0f), 0x3C00);
    EXPECT_EQ(floatToHalfBits(2.0f), 0x4000);
    EXPECT_EQ(floatToHalfBits(-2.0f), 0xC000);
    EXPECT_EQ(floatToHalfBits(0.5f), 0x3800);
    EXPECT_EQ(floatToHalfBits(65504.0f), 0x7BFF);
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x3C00), 1.0f);
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x7BFF), 65504.0f);
}

TEST(Half, OverflowToInfinity)
{
    EXPECT_EQ(floatToHalfBits(65536.0f), 0x7C00);
    EXPECT_EQ(floatToHalfBits(-1e10f), 0xFC00);
    EXPECT_TRUE(std::isinf(halfBitsToFloat(0x7C00)));
}

TEST(Half, NanPreserved)
{
    float nan = std::nanf("");
    std::uint16_t h = floatToHalfBits(nan);
    EXPECT_EQ(h & 0x7C00, 0x7C00); // Exponent all ones.
    EXPECT_NE(h & 0x03FF, 0);      // Nonzero mantissa.
    EXPECT_TRUE(std::isnan(halfBitsToFloat(h)));
}

TEST(Half, Subnormals)
{
    // Smallest positive subnormal half = 2^-24.
    float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(floatToHalfBits(tiny), 0x0001);
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x0001), tiny);
    // Below half of the smallest subnormal: flush to zero.
    EXPECT_EQ(floatToHalfBits(std::ldexp(1.0f, -26)), 0x0000);
    // Subnormal round trip across the range.
    for (std::uint16_t bits = 1; bits < 0x400; bits += 37) {
        float f = halfBitsToFloat(bits);
        EXPECT_EQ(floatToHalfBits(f), bits) << bits;
    }
}

TEST(Half, RoundToNearestEven)
{
    // 1 + 2^-11 sits exactly between 1.0 and the next half (1+2^-10):
    // ties to even -> 1.0 (even mantissa).
    float halfway = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(floatToHalfBits(halfway), 0x3C00);
    // Slightly above the tie rounds up.
    float above = 1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -20);
    EXPECT_EQ(floatToHalfBits(above), 0x3C01);
}

class HalfRoundTrip : public ::testing::TestWithParam<std::uint16_t>
{
};

TEST_P(HalfRoundTrip, AllNormalBitsRoundTrip)
{
    // Every finite half value converts to float and back unchanged.
    std::uint16_t start = GetParam();
    for (std::uint32_t b = start; b < std::uint32_t{start} + 0x800;
         ++b) {
        auto bits = static_cast<std::uint16_t>(b);
        if ((bits & 0x7C00) == 0x7C00)
            continue; // Inf/NaN handled elsewhere.
        float f = halfBitsToFloat(bits);
        ASSERT_EQ(floatToHalfBits(f), bits) << std::hex << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HalfRoundTrip,
                         ::testing::Values(0x0000, 0x0800, 0x1000,
                                           0x3800, 0x7000, 0x8000,
                                           0xB800, 0xF000));

TEST(Half, ValueTypeArithmetic)
{
    Half a(1.5f), b(2.25f);
    EXPECT_FLOAT_EQ((a + b).toFloat(), 3.75f);
    EXPECT_FLOAT_EQ((a * b).toFloat(), 3.375f);
    EXPECT_EQ(Half::fromBits(0x3C00).toFloat(), 1.0f);
    EXPECT_EQ(Half(1.0f), Half::fromBits(0x3C00));
}

TEST(Fp16Forward, TracksFp32WithinRoundingError)
{
    using namespace beacongnn;
    graph::Graph g = graph::generateRing(200, 8);
    graph::FeatureTable feat(32, 3);
    ModelConfig m;
    m.hops = 2;
    m.fanout = 3;
    m.featureDim = 32;
    m.hiddenDim = 16;
    m.seed = 9;
    std::vector<graph::NodeId> targets = {0, 40, 120};
    Subgraph sg = csrSample(g, m, 0, targets);

    auto f32 = forward(sg, feat, m);
    auto f16 = forwardFp16(sg, feat, m);
    ASSERT_EQ(f32.size(), f16.size());
    double max_rel = 0;
    for (std::size_t t = 0; t < f32.size(); ++t) {
        ASSERT_EQ(f32[t].size(), f16[t].size());
        for (std::size_t i = 0; i < f32[t].size(); ++i) {
            double denom = std::max(0.05, static_cast<double>(std::abs(f32[t][i])));
            max_rel = std::max(
                max_rel,
                static_cast<double>(std::abs(f32[t][i] - f16[t][i])) /
                    denom);
        }
    }
    // Half has ~3 decimal digits; two layers of accumulation keep the
    // relative divergence small but nonzero.
    EXPECT_LT(max_rel, 0.05);
    EXPECT_GT(max_rel, 0.0);
}

TEST(Fp16Forward, Deterministic)
{
    using namespace beacongnn;
    graph::Graph g = graph::generateRing(50, 5);
    graph::FeatureTable feat(16, 3);
    ModelConfig m;
    m.hops = 2;
    m.featureDim = 16;
    m.hiddenDim = 8;
    std::vector<graph::NodeId> targets = {7};
    Subgraph sg = csrSample(g, m, 1, targets);
    auto a = forwardFp16(sg, feat, m);
    auto b = forwardFp16(sg, feat, m);
    for (std::size_t i = 0; i < a[0].size(); ++i)
        EXPECT_EQ(a[0][i], b[0][i]);
}

} // namespace
