/**
 * @file
 * Unit tests for the flash backend: address codec, page store and the
 * die/channel timing model (including the Fig. 6 serialization effect
 * the motivation experiment builds on).
 */

#include <gtest/gtest.h>

#include "flash/address.h"
#include "flash/backend.h"
#include "flash/config.h"
#include "flash/page_store.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::flash;

FlashConfig
smallConfig()
{
    FlashConfig cfg;
    cfg.channels = 4;
    cfg.diesPerChannel = 2;
    cfg.planesPerDie = 2;
    cfg.blocksPerPlane = 8;
    cfg.pagesPerBlock = 16;
    cfg.pageSize = 4096;
    return cfg;
}

TEST(FlashConfig, DerivedQuantities)
{
    FlashConfig cfg = smallConfig();
    EXPECT_EQ(cfg.totalDies(), 8u);
    EXPECT_EQ(cfg.totalBlocks(), 4u * 2 * 2 * 8);
    EXPECT_EQ(cfg.totalPages(), cfg.totalBlocks() * 16);
    EXPECT_EQ(cfg.channelTime(4096), sim::transferTime(4096, 800.0));
    FlashConfig trad = cfg.asTraditional();
    EXPECT_EQ(trad.readLatency, sim::microseconds(20));
    EXPECT_EQ(cfg.readLatency, sim::microseconds(3));
}

TEST(AddressCodec, RoundTrip)
{
    FlashConfig cfg = smallConfig();
    AddressCodec codec(cfg);
    for (BlockId b = 0; b < cfg.totalBlocks(); ++b) {
        PageLocation loc = codec.decodeBlock(b);
        EXPECT_LT(loc.channel, cfg.channels);
        EXPECT_LT(loc.die, cfg.diesPerChannel);
        EXPECT_LT(loc.plane, cfg.planesPerDie);
        EXPECT_LT(loc.block, cfg.blocksPerPlane);
        EXPECT_EQ(codec.encodeBlock(loc), b);
    }
}

TEST(AddressCodec, BlocksStripeAcrossChannels)
{
    FlashConfig cfg = smallConfig();
    AddressCodec codec(cfg);
    // Consecutive blocks land on consecutive channels.
    for (BlockId b = 0; b + 1 < cfg.channels; ++b) {
        EXPECT_EQ(codec.decodeBlock(b).channel, b % cfg.channels);
        EXPECT_NE(codec.decodeBlock(b).channel,
                  codec.decodeBlock(b + 1).channel);
    }
}

TEST(AddressCodec, PageDecomposition)
{
    FlashConfig cfg = smallConfig();
    AddressCodec codec(cfg);
    Ppa ppa = 5 * cfg.pagesPerBlock + 7;
    EXPECT_EQ(codec.blockOf(ppa), 5u);
    EXPECT_EQ(codec.pageInBlock(ppa), 7u);
    EXPECT_EQ(codec.firstPage(5), 5u * cfg.pagesPerBlock);
    PageLocation loc = codec.decode(ppa);
    EXPECT_EQ(loc.page, 7u);
    EXPECT_EQ(codec.channelOf(ppa), loc.channel);
    EXPECT_EQ(codec.globalDieOf(ppa),
              loc.channel * cfg.diesPerChannel + loc.die);
}

TEST(PageStore, ProgramReadErase)
{
    FlashConfig cfg = smallConfig();
    PageStore store(cfg);
    std::vector<std::uint8_t> data(cfg.pageSize, 0xAB);
    EXPECT_TRUE(store.program(10, data));
    auto back = store.read(10);
    ASSERT_EQ(back.size(), cfg.pageSize);
    EXPECT_EQ(back[0], 0xAB);
    EXPECT_EQ(back[4095], 0xAB);
    // Overwrite without erase is a protocol violation.
    EXPECT_FALSE(store.program(10, data));
    // Erase clears all pages of the block and allows re-program.
    store.eraseBlock(0);
    EXPECT_TRUE(store.read(10).empty());
    EXPECT_TRUE(store.program(10, data));
    EXPECT_EQ(store.peCycles(0), 1u);
}

TEST(PageStore, ShortProgramZeroPads)
{
    FlashConfig cfg = smallConfig();
    PageStore store(cfg);
    std::vector<std::uint8_t> data(8, 0xFF);
    EXPECT_TRUE(store.program(3, data));
    auto back = store.read(3);
    ASSERT_EQ(back.size(), cfg.pageSize);
    EXPECT_EQ(back[7], 0xFF);
    EXPECT_EQ(back[8], 0x00);
}

TEST(PageStore, CorruptBit)
{
    FlashConfig cfg = smallConfig();
    PageStore store(cfg);
    std::vector<std::uint8_t> data(cfg.pageSize, 0);
    store.program(1, data);
    EXPECT_TRUE(store.corruptBit(1, 100, 3));
    EXPECT_EQ(store.read(1)[100], 1u << 3);
    EXPECT_FALSE(store.corruptBit(999, 0, 0)); // Unprogrammed page.
}

TEST(Backend, SingleReadTiming)
{
    FlashConfig cfg = smallConfig();
    FlashBackend be(cfg);
    FlashOpTiming t = be.read(0, 0, cfg.pageSize);
    EXPECT_EQ(t.cmdStart, 0u);
    EXPECT_EQ(t.senseStart, cfg.commandOverhead);
    EXPECT_EQ(t.senseEnd, t.senseStart + cfg.readLatency);
    EXPECT_EQ(t.xferEnd - t.xferStart, cfg.channelTime(cfg.pageSize));
    EXPECT_EQ(t.xferStart, t.senseEnd);
}

TEST(Backend, OnDieComputeExtendsSense)
{
    FlashConfig cfg = smallConfig();
    FlashBackend be(cfg);
    FlashOpTiming t = be.read(0, 0, 64, sim::nanoseconds(500));
    EXPECT_EQ(t.senseEnd - t.senseStart,
              cfg.readLatency + sim::nanoseconds(500));
}

TEST(Backend, DiesOnOneChannelSerializeTransfers)
{
    // Fig. 6: dies sense in parallel, pages queue on the channel bus.
    FlashConfig cfg = smallConfig();
    FlashBackend be(cfg);
    // Blocks 0 and 4 are channel 0, dies 0 and 1 (4 channels).
    Ppa p0 = 0;
    Ppa p1 = 4 * cfg.pagesPerBlock;
    ASSERT_EQ(be.codec().channelOf(p0), be.codec().channelOf(p1));
    ASSERT_NE(be.codec().globalDieOf(p0), be.codec().globalDieOf(p1));

    FlashOpTiming a = be.read(0, p0, cfg.pageSize);
    FlashOpTiming b = be.read(0, p1, cfg.pageSize);
    // Senses overlap (different dies)...
    EXPECT_LT(b.senseStart, a.senseEnd);
    // ...but the second transfer waits for the first.
    EXPECT_GE(b.xferStart, a.xferEnd);
}

TEST(Backend, DifferentChannelsFullyParallel)
{
    FlashConfig cfg = smallConfig();
    FlashBackend be(cfg);
    FlashOpTiming a = be.read(0, 0, cfg.pageSize);
    FlashOpTiming b =
        be.read(0, 1 * cfg.pagesPerBlock, cfg.pageSize); // Channel 1.
    EXPECT_EQ(a.xferStart, b.xferStart);
    EXPECT_EQ(a.xferEnd, b.xferEnd);
}

TEST(Backend, SingleBufferedDieBackpressure)
{
    FlashConfig cfg = smallConfig();
    FlashBackend be(cfg);
    FlashOpTiming a = be.read(0, 0, cfg.pageSize);
    // Same die: next sense cannot begin until the result drained.
    FlashOpTiming b = be.read(0, 1, cfg.pageSize);
    EXPECT_GE(b.senseStart, a.xferEnd);
}

TEST(Backend, SmallTransfersRelieveChannel)
{
    // With die-sampler-sized frames, the channel stops being the
    // bottleneck: per-die cadence approaches the sense latency.
    FlashConfig cfg = smallConfig();
    FlashBackend big(cfg), small(cfg);
    sim::Tick last_big = 0, last_small = 0;
    for (int i = 0; i < 8; ++i) {
        last_big = big.read(0, 0, cfg.pageSize).xferEnd;
        last_small = small.read(0, 0, 128).xferEnd;
    }
    EXPECT_LT(last_small, last_big / 2);
}

TEST(Backend, ProgramAndErase)
{
    FlashConfig cfg = smallConfig();
    FlashBackend be(cfg);
    FlashOpTiming p = be.program(0, 0, cfg.pageSize);
    EXPECT_EQ(p.senseEnd - p.senseStart, cfg.programLatency);
    EXPECT_GE(p.senseStart, p.xferEnd); // Data in before program.
    FlashOpTiming e = be.erase(0, 3);
    EXPECT_EQ(e.senseEnd - e.senseStart, cfg.eraseLatency);
}

TEST(Backend, BusyAccounting)
{
    FlashConfig cfg = smallConfig();
    FlashBackend be(cfg);
    be.read(0, 0, cfg.pageSize);
    EXPECT_GT(be.totalDieBusy(), 0u);
    EXPECT_GT(be.totalChannelBusy(), 0u);
    be.resetStats();
    EXPECT_EQ(be.totalDieBusy(), 0u);
    EXPECT_EQ(be.totalChannelBusy(), 0u);
}

} // namespace

namespace {

using namespace beacongnn;
using namespace beacongnn::flash;

FlashConfig
smallDualConfig()
{
    FlashConfig cfg;
    cfg.channels = 4;
    cfg.diesPerChannel = 2;
    cfg.planesPerDie = 2;
    cfg.blocksPerPlane = 8;
    cfg.pagesPerBlock = 16;
    cfg.dualRegister = true;
    return cfg;
}

TEST(Backend, DualRegisterOverlapsSenseWithTransfer)
{
    FlashConfig cfg = smallDualConfig();
    FlashBackend be(cfg);
    FlashOpTiming a = be.read(0, 0, cfg.pageSize);
    // With dual registers the second sense starts right after the
    // first (not after the first transfer drains)...
    FlashOpTiming b = be.read(0, 1, cfg.pageSize);
    EXPECT_EQ(b.senseStart, a.senseEnd);
    EXPECT_LT(b.senseStart, a.xferEnd);
    // ...but the third must wait for the first transfer to finish.
    FlashOpTiming c = be.read(0, 2, cfg.pageSize);
    EXPECT_GE(c.senseStart, a.xferEnd);
}

TEST(Backend, DualRegisterImprovesSingleDieThroughput)
{
    FlashConfig single = smallDualConfig();
    single.dualRegister = false;
    FlashConfig dual = smallDualConfig();
    FlashBackend s(single), d(dual);
    sim::Tick end_s = 0, end_d = 0;
    for (int i = 0; i < 32; ++i) {
        end_s = s.read(0, static_cast<Ppa>(i % 16), single.pageSize)
                    .xferEnd;
        end_d = d.read(0, static_cast<Ppa>(i % 16), dual.pageSize)
                    .xferEnd;
    }
    // Pipelined die: steady state bound by the transfer alone.
    EXPECT_LT(end_d, end_s);
}

} // namespace
