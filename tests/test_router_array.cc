/**
 * @file
 * Tests for the channel-level command router (§V-B) and the §VIII
 * computational storage array: routing/crossbar accounting, bounded
 * dispatch queues, subgraph equivalence between a single BG-2 device
 * and any array size (keyed sampling), and scaling behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "engines/command_router.h"
#include "platforms/array.h"
#include "platforms/report.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::engines;

flash::FlashConfig
smallFlash()
{
    flash::FlashConfig cfg;
    cfg.channels = 4;
    cfg.diesPerChannel = 2;
    cfg.blocksPerPlane = 16;
    cfg.pagesPerBlock = 8;
    return cfg;
}

TEST(CommandRouter, RoutesWithCrossbarLatency)
{
    ssd::EngineConfig ecfg;
    flash::FlashConfig cfg = smallFlash();
    CommandRouter router(ecfg, cfg);
    // Page on channel 0 (block 0); command from channel 2.
    sim::Tick arrived = router.route(100, 2, 0);
    EXPECT_EQ(arrived, 100 + ecfg.crossbarHop);
    EXPECT_EQ(router.stats().routed, 1u);
    EXPECT_EQ(router.stats().crossChannel, 1u);
    // Same-channel command does not count as cross-channel.
    router.route(100, 0, 0);
    EXPECT_EQ(router.stats().crossChannel, 1u);
}

TEST(CommandRouter, ParseCostsRouterParse)
{
    ssd::EngineConfig ecfg;
    CommandRouter router(ecfg, smallFlash());
    EXPECT_EQ(router.parse(500), 500 + ecfg.routerParse);
    EXPECT_EQ(router.stats().parsed, 1u);
}

TEST(CommandRouter, BoundedQueueBackpressures)
{
    ssd::EngineConfig ecfg;
    flash::FlashConfig cfg = smallFlash();
    CommandRouter router(ecfg, cfg, /*depth=*/2);
    // Fill die 0's queue with two never-completing commands.
    sim::Tick a = router.route(0, 0, 0);
    router.bindCompletion(0, 1000);
    sim::Tick b = router.route(0, 0, 0);
    router.bindCompletion(0, 2000);
    EXPECT_EQ(a, ecfg.crossbarHop);
    EXPECT_EQ(b, ecfg.crossbarHop);
    // Third command must wait for the first slot to drain (t=1000).
    sim::Tick c = router.route(0, 0, 0);
    EXPECT_GE(c, 1000u);
    EXPECT_EQ(router.stats().peakQueue, 2u);
}

TEST(CommandRouter, QueueDrainsByCompletionTime)
{
    ssd::EngineConfig ecfg;
    CommandRouter router(ecfg, smallFlash(), 2);
    router.route(0, 0, 0);
    router.bindCompletion(0, 50);
    router.route(0, 0, 0);
    router.bindCompletion(0, 60);
    // At t=100 both slots have drained: no wait.
    sim::Tick c = router.route(100, 0, 0);
    EXPECT_EQ(c, 100 + ecfg.crossbarHop);
}

// --------------------------------------------------------------
// Array tests.
// --------------------------------------------------------------

struct ArrayRig
{
    std::unique_ptr<platforms::WorkloadBundle> bundle;
    platforms::RunConfig rc;

    ArrayRig()
    {
        gnn::ModelConfig model;
        ssd::SystemConfig sys;
        auto spec = graph::workload("amazon");
        spec.simNodes = 4000;
        bundle = platforms::makeBundle(spec, sys.flash, model);
        rc.batchSize = 32;
        rc.batches = 2;
    }
};

TEST(Array, SingleDeviceMatchesBg2Subgraph)
{
    ArrayRig rig;
    platforms::ArrayConfig acfg;
    acfg.devices = 1;
    auto array = platforms::runArray(acfg, rig.rc, *rig.bundle);
    auto single = platforms::runPlatform(
        platforms::makePlatform(platforms::PlatformKind::BG2), rig.rc,
        *rig.bundle);
    ASSERT_TRUE(array.ok && single.ok);
    EXPECT_EQ(array.lastSubgraph.size(), single.lastSubgraph.size());
    EXPECT_EQ(array.crossDevice, 0u);
}

TEST(Array, PartitioningDoesNotChangeSampling)
{
    // Keyed sampling: the array samples the exact same subgraph
    // regardless of how the graph is partitioned.
    ArrayRig rig;
    auto agg = [](const gnn::Subgraph &sg) {
        std::map<std::pair<graph::NodeId, int>,
                 std::multiset<graph::NodeId>> m;
        for (gnn::Slot s = 0; s < sg.size(); ++s) {
            const auto &e = sg[s];
            if (e.parent == gnn::kNoParent)
                continue;
            m[{sg[e.parent].node, sg[e.parent].hop}].insert(e.node);
        }
        return m;
    };
    platforms::ArrayConfig one;
    one.devices = 1;
    platforms::ArrayConfig four;
    four.devices = 4;
    auto a = platforms::runArray(one, rig.rc, *rig.bundle);
    auto b = platforms::runArray(four, rig.rc, *rig.bundle);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.lastSubgraph.size(), b.lastSubgraph.size());
    EXPECT_EQ(agg(a.lastSubgraph), agg(b.lastSubgraph));
    EXPECT_GT(b.crossDevice, 0u);
    EXPECT_EQ(a.commands, b.commands);
}

TEST(Array, ThroughputScalesWithDevices)
{
    ArrayRig rig;
    rig.rc.batchSize = 128;
    double prev = 0;
    for (unsigned n : {1u, 2u, 4u}) {
        platforms::ArrayConfig acfg;
        acfg.devices = n;
        auto r = platforms::runArray(acfg, rig.rc, *rig.bundle);
        ASSERT_TRUE(r.ok);
        EXPECT_GT(r.throughput, prev);
        prev = r.throughput;
    }
}

TEST(Array, CrossDeviceFractionGrowsWithDevices)
{
    ArrayRig rig;
    platforms::ArrayConfig two;
    two.devices = 2;
    platforms::ArrayConfig eight;
    eight.devices = 8;
    auto a = platforms::runArray(two, rig.rc, *rig.bundle);
    auto b = platforms::runArray(eight, rig.rc, *rig.bundle);
    // Random partitioning: expect ~1/2 vs ~7/8 of children remote.
    EXPECT_GT(b.crossFraction, a.crossFraction);
    EXPECT_NEAR(a.crossFraction, 0.5, 0.15);
    EXPECT_GT(b.crossFraction, 0.75);
}

TEST(Array, SlowP2pLinkHurtsScaling)
{
    ArrayRig rig;
    platforms::ArrayConfig fast;
    fast.devices = 4;
    platforms::ArrayConfig slow = fast;
    slow.p2pMBps = 10.0; // Pathologically slow link.
    slow.p2pLatency = sim::microseconds(100);
    auto f = platforms::runArray(fast, rig.rc, *rig.bundle);
    auto s = platforms::runArray(slow, rig.rc, *rig.bundle);
    EXPECT_GT(f.throughput, 1.5 * s.throughput);
}

TEST(Array, ZeroCommandsLeaveCrossFractionZero)
{
    // A run with no batches executes no command; the cross-device
    // fraction must be an exact 0, not a 0/0 NaN.
    ArrayRig rig;
    rig.rc.batches = 0;
    platforms::ArrayConfig acfg;
    acfg.devices = 2;
    auto r = platforms::runArray(acfg, rig.rc, *rig.bundle);
    EXPECT_EQ(r.commands, 0u);
    EXPECT_EQ(r.crossDevice, 0u);
    EXPECT_EQ(r.crossFraction, 0.0);
    EXPECT_FALSE(std::isnan(r.crossFraction));
}

TEST(Array, PerDeviceCommandsSumToTotal)
{
    ArrayRig rig;
    platforms::ArrayConfig acfg;
    acfg.devices = 4;
    auto r = platforms::runArray(acfg, rig.rc, *rig.bundle);
    ASSERT_EQ(r.perDeviceCommands.size(), 4u);
    std::uint64_t sum = 0;
    for (std::uint64_t c : r.perDeviceCommands) {
        EXPECT_GT(c, 0u);
        sum += c;
    }
    EXPECT_EQ(sum, r.commands);
}

TEST(Array, SingleDeviceRunIsByteIdenticalToPlainBg2)
{
    // The equivalence golden behind DESIGN.md §12: a devices = 1
    // array run goes through the exact same DeviceContext path as the
    // plain BG-2 platform and must reproduce its RunResult CSV row
    // and its full exported metrics snapshot byte for byte.
    ArrayRig rig;
    rig.rc.traceUtilization = true;
    rig.rc.utilizationBuckets = 8;

    sim::MetricRegistry array_reg, single_reg;
    platforms::ArrayConfig acfg;
    acfg.devices = 1;
    auto array = platforms::runArray(acfg, rig.rc, *rig.bundle,
                                     &array_reg);
    auto single = platforms::runPlatform(
        platforms::makePlatform(platforms::PlatformKind::BG2), rig.rc,
        *rig.bundle, &single_reg);
    ASSERT_TRUE(array.ok && single.ok);

    std::ostringstream a_csv, s_csv;
    platforms::writeCsvRow(a_csv, array.run);
    platforms::writeCsvRow(s_csv, single);
    EXPECT_EQ(a_csv.str(), s_csv.str());

    std::ostringstream a_json, s_json;
    array_reg.writeJson(a_json);
    single_reg.writeJson(s_json);
    EXPECT_EQ(a_json.str(), s_json.str());
}

TEST(Array, MultiDeviceRunExportsPerDeviceMetrics)
{
    ArrayRig rig;
    sim::MetricRegistry reg;
    platforms::ArrayConfig acfg;
    acfg.devices = 4;
    auto r = platforms::runArray(acfg, rig.rc, *rig.bundle, &reg);
    ASSERT_TRUE(r.ok);
    EXPECT_NE(reg.findGauge("array.devices"), nullptr);
    EXPECT_NE(reg.findCounter("array.cross_device"), nullptr);
    EXPECT_NE(reg.findCounter("array.p2p.bytes"), nullptr);
    for (unsigned d = 0; d < 4; ++d) {
        std::string p = "array.dev" + std::to_string(d) + ".";
        EXPECT_NE(reg.findCounter(p + "commands"), nullptr) << p;
        EXPECT_NE(reg.findCounter(p + "flash_reads"), nullptr) << p;
        EXPECT_NE(reg.findCounter(p + "flash.reads"), nullptr) << p;
        EXPECT_NE(reg.findCounter(p + "p2p.out_forwards"), nullptr)
            << p;
    }
}

TEST(Array, PartitionPolicyDoesNotChangeSubgraphs)
{
    // Keyed sampling again, now across partition policies: ownership
    // decides only where a command executes, never what it samples.
    ArrayRig rig;
    platforms::ArrayConfig acfg;
    acfg.devices = 4;
    std::map<std::string, std::size_t> sizes;
    std::uint64_t commands = 0;
    for (auto pol :
         {platforms::PartitionPolicy::Hash,
          platforms::PartitionPolicy::Range,
          platforms::PartitionPolicy::Balanced}) {
        acfg.partition = pol;
        auto r = platforms::runArray(acfg, rig.rc, *rig.bundle);
        ASSERT_TRUE(r.ok);
        sizes[platforms::partitionPolicyName(pol)] =
            r.lastSubgraph.size();
        if (commands == 0)
            commands = r.commands;
        EXPECT_EQ(r.commands, commands);
    }
    EXPECT_EQ(sizes["hash"], sizes["range"]);
    EXPECT_EQ(sizes["hash"], sizes["balanced"]);
}

} // namespace
