/**
 * @file
 * Tests for the NDP engines: the die-level sampler's functional
 * equivalence with the golden layout sampler, §VI-E abort behaviour,
 * secondary-command coalescing, and the GnnEngine's end-to-end
 * subgraph construction in both streaming and barrier modes.
 */

#include <gtest/gtest.h>

#include <map>

#include "engines/die_sampler.h"
#include "engines/gnn_engine.h"
#include "graph/generator.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::engines;

struct Rig
{
    ssd::SystemConfig cfg;
    graph::Graph g;
    graph::FeatureTable feat{16, 2};
    dg::DirectGraphLayout layout;
    std::unique_ptr<flash::PageStore> store;
    std::unique_ptr<dg::PageByteSource> bytes;
    std::unique_ptr<dg::LayoutSource> meta;
    gnn::ModelConfig model;

    explicit Rig(bool with_hub = true)
    {
        cfg.flash.channels = 4;
        cfg.flash.diesPerChannel = 2;
        cfg.flash.blocksPerPlane = 128;
        cfg.flash.pagesPerBlock = 32;

        if (with_hub) {
            // Hub node 0 spills into secondaries; the rest are small.
            std::vector<std::vector<graph::NodeId>> adj(128);
            for (graph::NodeId i = 0; i < 6000; ++i)
                adj[0].push_back(1 + (i % 127));
            for (graph::NodeId v = 1; v < 128; ++v)
                for (graph::NodeId k = 0; k < 6; ++k)
                    adj[v].push_back((v * 7 + k * 13) % 128);
            g = graph::Graph(adj);
        } else {
            g = graph::generateRing(128, 6);
        }
        ssd::Ftl ftl(cfg.flash);
        layout = dg::buildLayout(g, feat, cfg.flash,
                                 ftl.reserveBlocks(128));
        store = std::make_unique<flash::PageStore>(cfg.flash);
        dg::materialize(layout, g, feat, *store);
        bytes = std::make_unique<dg::PageByteSource>(*store, feat.dim());
        meta = std::make_unique<dg::LayoutSource>(layout, g);

        model.hops = 3;
        model.fanout = 3;
        model.featureDim = feat.dim();
        model.hiddenDim = 8;
        model.seed = 77;
    }

    flash::GnnGlobalConfig
    gnnCfg() const
    {
        return engines::gnnGlobalConfig(model);
    }
};

TEST(DieSampler, AbortsOnMissingSection)
{
    Rig rig;
    DieSampler s(rig.cfg.engine, rig.gnnCfg());
    flash::GnnSampleParams p;
    p.ppa = 12345; // Never programmed.
    flash::GnnSampleResult r = s.execute(std::nullopt, p);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.follow.empty());
}

TEST(DieSampler, AbortsOnTypeMismatch)
{
    Rig rig;
    DieSampler s(rig.cfg.engine, rig.gnnCfg());
    // Expect secondary, fetch a primary.
    flash::GnnSampleParams p;
    dg::DgAddress a = rig.layout.nodes[5].primary;
    p.ppa = a.page();
    p.sectionIndex = static_cast<std::uint8_t>(a.section());
    p.isSecondary = true;
    p.sampleCount = 2;
    auto sec = rig.bytes->fetch(a);
    ASSERT_TRUE(sec.has_value());
    flash::GnnSampleResult r = s.execute(sec, p);
    EXPECT_FALSE(r.ok);
}

TEST(DieSampler, FinalHopRetrievesFeatureOnly)
{
    Rig rig;
    DieSampler s(rig.cfg.engine, rig.gnnCfg());
    dg::DgAddress a = rig.layout.nodes[9].primary;
    flash::GnnSampleParams p;
    p.ppa = a.page();
    p.sectionIndex = static_cast<std::uint8_t>(a.section());
    p.hop = rig.model.hops;
    p.finalHop = true;
    p.sampleCount = 0;
    flash::GnnSampleResult r = s.execute(rig.bytes->fetch(a), p);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.featureIncluded);
    EXPECT_EQ(r.featureBytes, rig.feat.bytesPerNode());
    EXPECT_TRUE(r.follow.empty());
    EXPECT_EQ(r.nodeId, 9u);
}

TEST(DieSampler, CoalescesSecondaryHits)
{
    Rig rig;
    flash::GnnGlobalConfig gc = rig.gnnCfg();
    gc.fanout = 32; // Many draws so several land per secondary.
    DieSampler s(rig.cfg.engine, gc);
    const auto &nl = rig.layout.nodes[0];
    ASSERT_GT(nl.secondaries.size(), 0u);

    flash::GnnSampleParams p;
    p.ppa = nl.primary.page();
    p.sectionIndex = static_cast<std::uint8_t>(nl.primary.section());
    p.hop = 0;
    p.sampleCount = 32;
    p.retrieveFeature = true;
    flash::GnnSampleResult r = s.execute(rig.bytes->fetch(nl.primary), p);
    ASSERT_TRUE(r.ok);

    // At most one command per secondary section; counts sum with the
    // in-page picks to the fanout.
    std::map<std::uint32_t, int> per_addr;
    std::uint32_t total = 0;
    for (const auto &f : r.follow) {
        if (f.params.isSecondary) {
            dg::DgAddress a(f.params.ppa, f.params.sectionIndex);
            ++per_addr[a.raw];
            total += f.params.sampleCount;
        } else {
            ++total;
        }
    }
    EXPECT_EQ(total, 32u);
    for (const auto &[addr, count] : per_addr)
        EXPECT_EQ(count, 1);
    EXPECT_GE(per_addr.size(), 1u);
}

TEST(DieSampler, FrameBytesReflectContent)
{
    Rig rig;
    DieSampler s(rig.cfg.engine, rig.gnnCfg());
    dg::DgAddress a = rig.layout.nodes[3].primary;
    flash::GnnSampleParams p;
    p.ppa = a.page();
    p.sectionIndex = static_cast<std::uint8_t>(a.section());
    p.sampleCount = 3;
    p.retrieveFeature = true;
    flash::GnnSampleResult r = s.execute(rig.bytes->fetch(a), p);
    EXPECT_EQ(r.frameBytes(),
              16u + rig.feat.bytesPerNode() + 12u * r.follow.size());
    EXPECT_GT(s.latency(r), 0u);
}

/**
 * Drive the sampler recursively through byte-backed sections and
 * check the resulting subgraph equals the golden layoutSample().
 */
TEST(DieSampler, RecursiveExpansionMatchesGoldenSampler)
{
    Rig rig;
    DieSampler s(rig.cfg.engine, rig.gnnCfg());
    std::uint64_t batch = 4;

    gnn::Subgraph got;
    struct Pending
    {
        flash::GnnSampleParams p;
    };
    std::vector<Pending> work;
    std::vector<graph::NodeId> targets = {0, 1, 64};
    for (auto t : targets) {
        Pending w;
        dg::DgAddress a = rig.layout.primaryOf(t);
        w.p.ppa = a.page();
        w.p.sectionIndex = static_cast<std::uint8_t>(a.section());
        w.p.hop = 0;
        w.p.batchId = static_cast<std::uint32_t>(batch);
        w.p.parentSlot = gnn::kNoParent;
        w.p.retrieveFeature = true;
        w.p.sampleCount = rig.model.fanout;
        work.push_back(w);
    }
    while (!work.empty()) {
        Pending w = work.back();
        work.pop_back();
        auto sec = rig.bytes->fetch(
            dg::DgAddress(w.p.ppa, w.p.sectionIndex));
        flash::GnnSampleResult r = s.execute(sec, w.p);
        ASSERT_TRUE(r.ok);
        gnn::Slot parent = w.p.parentSlot;
        if (!w.p.isSecondary) {
            parent = got.add(static_cast<graph::NodeId>(r.nodeId),
                             w.p.hop, w.p.parentSlot);
        }
        for (auto f : r.follow) {
            f.params.parentSlot = parent;
            work.push_back({f.params});
        }
    }

    gnn::Subgraph golden =
        gnn::layoutSample(rig.g, rig.layout, rig.model, batch, targets);

    // Compare per-parent child multisets (expansion order differs).
    auto childMap = [](const gnn::Subgraph &sg) {
        std::map<std::pair<gnn::Slot, int>,
                 std::multiset<graph::NodeId>> m;
        // Key children by (parent node instance path); approximate by
        // (parent node, parent hop) aggregated multiset.
        std::map<std::pair<graph::NodeId, int>,
                 std::multiset<graph::NodeId>> agg;
        for (gnn::Slot slot = 0; slot < sg.size(); ++slot) {
            const auto &e = sg[slot];
            if (e.parent == gnn::kNoParent)
                continue;
            const auto &p = sg[e.parent];
            agg[{p.node, p.hop}].insert(e.node);
        }
        return agg;
    };
    auto a = childMap(got);
    auto b = childMap(golden);
    EXPECT_EQ(got.size(), golden.size());
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------
// GnnEngine end-to-end.
// ---------------------------------------------------------------

struct EngineRig : Rig
{
    sim::EventQueue queue;
    std::unique_ptr<flash::FlashBackend> backend;
    std::unique_ptr<ssd::Firmware> fw;

    EngineRig() : Rig(true)
    {
        backend = std::make_unique<flash::FlashBackend>(cfg.flash);
        fw = std::make_unique<ssd::Firmware>(cfg);
    }

    PrepResult
    run(const PrepFlags &flags, const dg::SectionSource &src,
        std::vector<graph::NodeId> targets, std::uint64_t batch = 1)
    {
        GnnEngine engine(queue, *backend, *fw, layout, g, model, flags,
                         src);
        PrepResult out;
        bool got = false;
        engine.prepare(queue.now(), batch, targets,
                       [&](PrepResult &&r) {
                           out = std::move(r);
                           got = true;
                       });
        queue.run();
        EXPECT_TRUE(got);
        return out;
    }
};

PrepFlags
streamingFlags(SamplingLoc loc, bool router)
{
    PrepFlags f;
    f.sampling = loc;
    f.directGraph = true;
    f.hwRouter = router;
    return f;
}

TEST(GnnEngine, StreamingSubgraphMatchesGolden)
{
    EngineRig rig;
    std::vector<graph::NodeId> targets = {0, 5, 100};
    PrepResult pr = rig.run(streamingFlags(SamplingLoc::Die, true),
                            *rig.bytes, targets, 9);
    ASSERT_TRUE(pr.ok);

    gnn::Subgraph golden =
        gnn::layoutSample(rig.g, rig.layout, rig.model, 9, targets);
    EXPECT_EQ(pr.subgraph.size(), golden.size());

    // Same per-(node,hop) child multisets.
    auto agg = [](const gnn::Subgraph &sg) {
        std::map<std::pair<graph::NodeId, int>,
                 std::multiset<graph::NodeId>> m;
        for (gnn::Slot s = 0; s < sg.size(); ++s) {
            const auto &e = sg[s];
            if (e.parent == gnn::kNoParent)
                continue;
            m[{sg[e.parent].node, sg[e.parent].hop}].insert(e.node);
        }
        return m;
    };
    EXPECT_EQ(agg(pr.subgraph), agg(golden));
    // Hop counts follow the fanout tree.
    auto counts = pr.subgraph.hopCounts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 3u);
    EXPECT_EQ(counts[1], 9u);
    EXPECT_EQ(counts[3], 81u);
}

TEST(GnnEngine, StreamingVariantsProduceSameSubgraph)
{
    // BG-DG (firmware), BG-DGSP (die+fw), BG-2 (die+router) must all
    // sample identically — only their timing differs.
    std::vector<graph::NodeId> targets = {0, 7, 31};
    EngineRig r1, r2, r3;
    PrepResult a = r1.run(streamingFlags(SamplingLoc::Firmware, false),
                          *r1.bytes, targets, 3);
    PrepResult b = r2.run(streamingFlags(SamplingLoc::Die, false),
                          *r2.bytes, targets, 3);
    PrepResult c = r3.run(streamingFlags(SamplingLoc::Die, true),
                          *r3.bytes, targets, 3);
    ASSERT_TRUE(a.ok && b.ok && c.ok);
    EXPECT_EQ(a.subgraph.size(), b.subgraph.size());
    EXPECT_EQ(b.subgraph.size(), c.subgraph.size());
    // And BG-2 must not be slower than BG-DGSP, which must not be
    // slower than BG-DG on the same workload.
    EXPECT_LE(c.finish - c.start, b.finish - b.start);
    EXPECT_LE(b.finish - b.start, a.finish - a.start);
}

TEST(GnnEngine, ByteAndLayoutSourcesSameSubgraphAndTiming)
{
    std::vector<graph::NodeId> targets = {0, 2, 90};
    EngineRig r1, r2;
    PrepResult a = r1.run(streamingFlags(SamplingLoc::Die, true),
                          *r1.bytes, targets, 5);
    PrepResult b = r2.run(streamingFlags(SamplingLoc::Die, true),
                          *r2.meta, targets, 5);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.subgraph.size(), b.subgraph.size());
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.commands, b.commands);
}

TEST(GnnEngine, BarrierModeBuildsFullSubgraph)
{
    EngineRig rig;
    PrepFlags f; // Firmware sampling, no DirectGraph: BG-1.
    f.sampling = SamplingLoc::Firmware;
    f.idsToHost = true;
    std::vector<graph::NodeId> targets = {1, 2};
    PrepResult pr = rig.run(f, *rig.bytes, targets, 2);
    ASSERT_TRUE(pr.ok);
    EXPECT_EQ(pr.subgraph.size(), 2u * rig.model.subgraphNodes());
    // Hop spans are strictly ordered (no overlap).
    ASSERT_EQ(pr.hops.size(), 4u);
    for (std::size_t h = 0; h + 1 < pr.hops.size(); ++h) {
        EXPECT_LE(pr.hops[h].last, pr.hops[h + 1].first)
            << "hop " << h << " overlaps hop " << h + 1;
    }
}

TEST(GnnEngine, StreamingOverlapsHops)
{
    EngineRig rig;
    std::vector<graph::NodeId> targets;
    for (graph::NodeId t = 0; t < 32; ++t)
        targets.push_back(t * 4);
    PrepResult pr = rig.run(streamingFlags(SamplingLoc::Die, true),
                            *rig.bytes, targets, 1);
    ASSERT_TRUE(pr.ok);
    // Out-of-order streaming: later hops start before earlier hops
    // fully drain.
    bool overlap = false;
    for (std::size_t h = 0; h + 1 < pr.hops.size(); ++h)
        overlap |= pr.hops[h + 1].first < pr.hops[h].last;
    EXPECT_TRUE(overlap);
}

TEST(GnnEngine, BarrierCsrSemanticsMatchGolden)
{
    EngineRig rig;
    PrepFlags f;
    f.sampling = SamplingLoc::Host;
    f.pciePageLegs = 1;
    std::vector<graph::NodeId> targets = {3, 40};
    PrepResult pr = rig.run(f, *rig.bytes, targets, 6);
    ASSERT_TRUE(pr.ok);
    gnn::Subgraph golden = gnn::csrSample(rig.g, rig.model, 6, targets);
    ASSERT_EQ(pr.subgraph.size(), golden.size());
    auto agg = [](const gnn::Subgraph &sg) {
        std::map<std::pair<graph::NodeId, int>,
                 std::multiset<graph::NodeId>> m;
        for (gnn::Slot s = 0; s < sg.size(); ++s) {
            const auto &e = sg[s];
            if (e.parent == gnn::kNoParent)
                continue;
            m[{sg[e.parent].node, sg[e.parent].hop}].insert(e.node);
        }
        return m;
    };
    EXPECT_EQ(agg(pr.subgraph), agg(golden));
}

TEST(GnnEngine, AbortSurfacesAsNotOk)
{
    EngineRig rig;
    // Corrupt the type byte of a target's primary section so the
    // on-die check fails at runtime (§VI-E).
    dg::DgAddress a = rig.layout.primaryOf(64);
    const dg::SectionPlacement *sp = rig.layout.find(a);
    ASSERT_NE(sp, nullptr);
    rig.store->corruptBit(a.page(), sp->byteOffset, 7);
    std::vector<graph::NodeId> targets = {64};
    PrepResult pr = rig.run(streamingFlags(SamplingLoc::Die, true),
                            *rig.bytes, targets, 1);
    EXPECT_FALSE(pr.ok);
    EXPECT_GT(pr.tally.abortedCommands, 0u);
}

TEST(GnnEngine, TalliesAreConsistent)
{
    EngineRig rig;
    std::vector<graph::NodeId> targets = {0, 1, 2, 3};
    PrepResult pr = rig.run(streamingFlags(SamplingLoc::Die, true),
                            *rig.bytes, targets, 1);
    ASSERT_TRUE(pr.ok);
    EXPECT_EQ(pr.commands, pr.tally.flashReads);
    EXPECT_GT(pr.tally.channelBytes, 0u);
    // Features staged for every subgraph node.
    EXPECT_EQ(pr.tally.featureBytes,
              pr.subgraph.size() *
                  std::uint64_t{rig.feat.bytesPerNode()});
    EXPECT_GE(pr.finish, pr.start);
    EXPECT_EQ(pr.cmdStats.lifetime.count(), pr.commands);
}

} // namespace

namespace {

using namespace beacongnn;
using namespace beacongnn::engines;

/** Hub-heavy rig reused for barrier-mode specifics. */
TEST(GnnEngineBarrier, BgSpContinuationsMatchSecondaryHits)
{
    EngineRig rig;
    PrepFlags f;
    f.sampling = SamplingLoc::Die;
    f.idsToHost = true;
    std::vector<graph::NodeId> targets = {0}; // The hub node.
    PrepResult pr = rig.run(f, *rig.bytes, targets, 4);
    ASSERT_TRUE(pr.ok);
    // The hub's fanout-3 draws mostly land in secondaries; the reads
    // must include the coalesced continuations: commands exceed the
    // subgraph sampling visits but stay bounded by visits * (1 +
    // fanout) + final-hop features.
    auto counts = pr.subgraph.hopCounts();
    std::uint64_t visits = 0;
    for (std::size_t h = 0; h + 1 < counts.size(); ++h)
        visits += counts[h];
    std::uint64_t finals = counts.back();
    EXPECT_GE(pr.commands, visits + finals);
    EXPECT_LE(pr.commands,
              visits * (1 + rig.model.fanout) + finals);
}

TEST(GnnEngineBarrier, HostSamplingChargesHostCpu)
{
    EngineRig host_rig, fw_rig;
    PrepFlags host_flags;
    host_flags.sampling = SamplingLoc::Host;
    host_flags.pciePageLegs = 1;
    PrepFlags fw_flags;
    fw_flags.sampling = SamplingLoc::Firmware;
    std::vector<graph::NodeId> targets = {1, 2, 3};
    PrepResult h = host_rig.run(host_flags, *host_rig.bytes, targets, 2);
    PrepResult w = fw_rig.run(fw_flags, *fw_rig.bytes, targets, 2);
    ASSERT_TRUE(h.ok && w.ok);
    // Host sampling pays per-visit CPU plus per-page I/O overhead;
    // firmware sampling pays neither on the host side.
    EXPECT_GT(h.tally.hostCpuBusy, 2 * w.tally.hostCpuBusy);
    // Pages crossed PCIe only on the host-sampling platform.
    EXPECT_GT(h.tally.pcieBytes, 0u);
}

TEST(GnnEngineBarrier, HopSpansAreMonotone)
{
    // In barrier mode each hop's first activity follows the previous
    // hop's start (hops begin in order even where reads tail over).
    EngineRig rig;
    PrepFlags f;
    f.sampling = SamplingLoc::Firmware;
    std::vector<graph::NodeId> targets = {5, 6, 7, 8};
    PrepResult pr = rig.run(f, *rig.bytes, targets, 3);
    ASSERT_TRUE(pr.ok);
    for (std::size_t h = 0; h + 1 < pr.hops.size(); ++h) {
        EXPECT_LE(pr.hops[h].first, pr.hops[h + 1].first);
        EXPECT_LE(pr.hops[h].last, pr.hops[h + 1].first)
            << "barrier violated between hops " << h << " and "
            << h + 1;
    }
}

TEST(GnnEngineBarrier, LifetimeHistogramTracksAccumulator)
{
    EngineRig rig;
    PrepFlags f;
    f.sampling = SamplingLoc::Die;
    f.directGraph = true;
    f.hwRouter = true;
    std::vector<graph::NodeId> targets = {0, 9, 18};
    PrepResult pr = rig.run(f, *rig.bytes, targets, 6);
    ASSERT_TRUE(pr.ok);
    EXPECT_EQ(pr.cmdStats.lifetimeHist.summary().count(),
              pr.cmdStats.lifetime.count());
    // Quantiles bracket the mean sensibly.
    EXPECT_GE(pr.cmdStats.lifetimeHist.quantile(0.99) + 10.0,
              pr.cmdStats.lifetime.mean());
    EXPECT_LE(pr.cmdStats.lifetimeHist.quantile(0.01),
              pr.cmdStats.lifetime.max() + 10.0);
}

} // namespace
